#include "core/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mecsc::core {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

namespace {

/// Validated numeric extraction. Documents arrive from untrusted sources
/// (files, the svc socket), so every number is checked *before* any cast:
/// a negative or NaN double cast to an unsigned index is undefined
/// behavior, and a plausible-looking huge index would silently allocate.
/// Every rejection names the offending element and the violated bound so
/// the producer can fix the document without reading this source.
///
/// The helpers (and the instance decoders below) are templates over the
/// document type — instantiated once for the DOM (util::JsonValue) and
/// once for the arena cursor (util::JsonArena::View) — so the two parse
/// paths share one body and cannot diverge in validation or messages.

[[noreturn]] void reject(const std::string& where, const std::string& why) {
  throw std::invalid_argument("io: " + where + ": " + why);
}

template <class Doc>
double checked_finite(const Doc& v, const std::string& where) {
  const double d = v.as_number();
  if (!std::isfinite(d)) reject(where, "must be finite");
  return d;
}

template <class Doc>
double checked_nonneg(const Doc& v, const std::string& where) {
  const double d = checked_finite(v, where);
  if (d < 0.0) {
    reject(where, "is " + util::JsonValue(d).dump() + " but must be >= 0");
  }
  return d;
}

template <class Doc>
double checked_fraction(const Doc& v, const std::string& where) {
  const double d = checked_finite(v, where);
  if (d < 0.0 || d > 1.0) {
    reject(where,
           "is " + util::JsonValue(d).dump() + " but must be in [0, 1]");
  }
  return d;
}

/// Index in [0, bound): integral, non-negative, in range.
template <class Doc>
std::size_t checked_index(const Doc& v, const std::string& where,
                          std::size_t bound, const std::string& bound_name) {
  const double d = checked_finite(v, where);
  if (d < 0.0 || d != std::floor(d)) {
    reject(where,
           "is " + util::JsonValue(d).dump() +
               " but must be a non-negative integer");
  }
  if (d >= static_cast<double>(bound)) {
    reject(where, "is " + util::JsonValue(d).dump() + " but only " +
                      std::to_string(bound) + " " + bound_name + " exist");
  }
  return static_cast<std::size_t>(d);
}

/// Non-negative integral count (no upper bound).
template <class Doc>
std::size_t checked_count(const Doc& v, const std::string& where) {
  const double d = checked_finite(v, where);
  if (d < 0.0 || d != std::floor(d)) {
    reject(where,
           "is " + util::JsonValue(d).dump() +
               " but must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

JsonValue graph_to_json(const net::Graph& g) {
  JsonArray edges;
  edges.reserve(g.edge_count());
  for (const net::Edge& e : g.edges()) {
    edges.push_back(JsonValue(JsonArray{
        JsonValue(e.u), JsonValue(e.v), JsonValue(e.length),
        JsonValue(e.bandwidth_mbps)}));
  }
  return JsonValue(JsonObject{{"nodes", JsonValue(g.node_count())},
                              {"edges", JsonValue(std::move(edges))}});
}

template <class Doc>
net::Graph graph_from_any(const Doc& doc) {
  const std::size_t nodes = checked_count(doc.at("nodes"), "topology.nodes");
  if (nodes == 0) reject("topology.nodes", "graph needs at least one node");
  net::Graph g(nodes);
  std::size_t idx = 0;
  for (const auto& e : doc.at("edges").as_array()) {
    const std::string where = "topology.edges[" + std::to_string(idx++) + "]";
    const auto& t = e.as_array();
    if (t.size() != 4) {
      reject(where, "edge tuple has " + std::to_string(t.size()) +
                        " elements but must be [u, v, length, bandwidth]");
    }
    const std::size_t u = checked_index(t[0], where + ".u", nodes, "nodes");
    const std::size_t v = checked_index(t[1], where + ".v", nodes, "nodes");
    const double length = checked_nonneg(t[2], where + ".length");
    const double bw = checked_nonneg(t[3], where + ".bandwidth");
    if (u == v) reject(where, "self-loop on node " + std::to_string(u));
    g.add_edge(u, v, length, bw);
  }
  return g;
}

CongestionKind congestion_kind_from_name(std::string_view name) {
  for (const auto kind :
       {CongestionKind::Linear, CongestionKind::Quadratic,
        CongestionKind::Exponential, CongestionKind::Harmonic}) {
    if (name == congestion_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("io: unknown congestion kind '" +
                              std::string(name) + "'");
}

/// Shared decode body — see the template note on the checked_* helpers.
template <class Doc>
Instance instance_from_any(const Doc& doc) {
  const double version = checked_finite(doc.at("format_version"),
                                        "format_version");
  if (static_cast<int>(version) != kIoFormatVersion ||
      version != std::floor(version)) {
    reject("format_version",
           "is " + JsonValue(version).dump() + " but this build reads version " +
               std::to_string(kIoFormatVersion));
  }
  net::Graph topology = graph_from_any(doc.at("topology"));
  const std::size_t nodes = topology.node_count();

  std::vector<net::Cloudlet> cloudlets;
  std::size_t idx = 0;
  for (const auto& c : doc.at("cloudlets").as_array()) {
    const std::string where = "cloudlets[" + std::to_string(idx++) + "]";
    net::Cloudlet cl;
    cl.node = static_cast<net::NodeId>(
        checked_index(c.at("node"), where + ".node", nodes, "nodes"));
    cl.compute_capacity = checked_nonneg(c.at("compute"), where + ".compute");
    cl.bandwidth_capacity =
        checked_nonneg(c.at("bandwidth"), where + ".bandwidth");
    cloudlets.push_back(cl);
  }
  std::vector<net::DataCenter> dcs;
  idx = 0;
  for (const auto& d : doc.at("data_centers").as_array()) {
    const std::string where = "data_centers[" + std::to_string(idx++) + "]";
    dcs.push_back(net::DataCenter{
        static_cast<net::NodeId>(checked_index(d, where, nodes, "nodes"))});
  }
  if (cloudlets.empty() || dcs.empty()) {
    throw std::invalid_argument("io: need at least one cloudlet and DC");
  }

  Instance inst{net::MecNetwork(std::move(topology), std::move(cloudlets),
                                std::move(dcs)),
                {},
                {}};

  idx = 0;
  for (const auto& p : doc.at("providers").as_array()) {
    const std::string where = "providers[" + std::to_string(idx++) + "]";
    ServiceProvider sp;
    sp.compute_per_request =
        checked_nonneg(p.at("compute_per_request"),
                       where + ".compute_per_request");
    sp.bandwidth_per_request =
        checked_nonneg(p.at("bandwidth_per_request"),
                       where + ".bandwidth_per_request");
    sp.requests = checked_count(p.at("requests"), where + ".requests");
    sp.instantiation_cost =
        checked_nonneg(p.at("instantiation_cost"),
                       where + ".instantiation_cost");
    sp.service_data_gb =
        checked_nonneg(p.at("service_data_gb"), where + ".service_data_gb");
    sp.update_fraction =
        checked_fraction(p.at("update_fraction"), where + ".update_fraction");
    sp.traffic_gb = checked_nonneg(p.at("traffic_gb"), where + ".traffic_gb");
    sp.home_dc = static_cast<DataCenterId>(
        checked_index(p.at("home_dc"), where + ".home_dc",
                      inst.network.data_center_count(), "data centers"));
    sp.user_region = static_cast<CloudletId>(
        checked_index(p.at("user_region"), where + ".user_region",
                      inst.network.cloudlet_count(), "cloudlets"));
    inst.providers.push_back(sp);
  }

  const auto& cost = doc.at("cost");
  idx = 0;
  for (const auto& a : cost.at("alpha").as_array()) {
    inst.cost.alpha.push_back(
        checked_nonneg(a, "cost.alpha[" + std::to_string(idx++) + "]"));
  }
  idx = 0;
  for (const auto& b : cost.at("beta").as_array()) {
    inst.cost.beta.push_back(
        checked_nonneg(b, "cost.beta[" + std::to_string(idx++) + "]"));
  }
  if (inst.cost.alpha.size() != inst.network.cloudlet_count() ||
      inst.cost.beta.size() != inst.network.cloudlet_count()) {
    reject("cost",
           "alpha has " + std::to_string(inst.cost.alpha.size()) +
               " and beta " + std::to_string(inst.cost.beta.size()) +
               " entries but the instance has " +
               std::to_string(inst.network.cloudlet_count()) + " cloudlets");
  }
  inst.cost.transfer_price_per_gb = checked_nonneg(
      cost.at("transfer_price_per_gb"), "cost.transfer_price_per_gb");
  inst.cost.processing_price_per_gb = checked_nonneg(
      cost.at("processing_price_per_gb"), "cost.processing_price_per_gb");
  inst.cost.vm_boot_cost =
      checked_nonneg(cost.at("vm_boot_cost"), "cost.vm_boot_cost");
  inst.cost.remote_hop_penalty = checked_nonneg(
      cost.at("remote_hop_penalty"), "cost.remote_hop_penalty");
  inst.cost.congestion =
      congestion_kind_from_name(cost.string_at("congestion"));
  return inst;
}

}  // namespace

JsonValue instance_to_json(const Instance& inst) {
  JsonObject root;
  root["format_version"] = JsonValue(kIoFormatVersion);
  root["topology"] = graph_to_json(inst.network.topology());

  JsonArray cloudlets;
  for (const net::Cloudlet& cl : inst.network.cloudlets()) {
    cloudlets.push_back(JsonValue(JsonObject{
        {"node", JsonValue(cl.node)},
        {"compute", JsonValue(cl.compute_capacity)},
        {"bandwidth", JsonValue(cl.bandwidth_capacity)}}));
  }
  root["cloudlets"] = JsonValue(std::move(cloudlets));

  JsonArray dcs;
  for (const net::DataCenter& dc : inst.network.data_centers()) {
    dcs.push_back(JsonValue(dc.node));
  }
  root["data_centers"] = JsonValue(std::move(dcs));

  JsonArray providers;
  for (const ServiceProvider& p : inst.providers) {
    providers.push_back(JsonValue(JsonObject{
        {"compute_per_request", JsonValue(p.compute_per_request)},
        {"bandwidth_per_request", JsonValue(p.bandwidth_per_request)},
        {"requests", JsonValue(p.requests)},
        {"instantiation_cost", JsonValue(p.instantiation_cost)},
        {"service_data_gb", JsonValue(p.service_data_gb)},
        {"update_fraction", JsonValue(p.update_fraction)},
        {"traffic_gb", JsonValue(p.traffic_gb)},
        {"home_dc", JsonValue(p.home_dc)},
        {"user_region", JsonValue(p.user_region)}}));
  }
  root["providers"] = JsonValue(std::move(providers));

  JsonObject cost;
  cost["alpha"] = JsonValue(JsonArray(inst.cost.alpha.begin(),
                                      inst.cost.alpha.end()));
  cost["beta"] =
      JsonValue(JsonArray(inst.cost.beta.begin(), inst.cost.beta.end()));
  cost["transfer_price_per_gb"] = JsonValue(inst.cost.transfer_price_per_gb);
  cost["processing_price_per_gb"] =
      JsonValue(inst.cost.processing_price_per_gb);
  cost["vm_boot_cost"] = JsonValue(inst.cost.vm_boot_cost);
  cost["remote_hop_penalty"] = JsonValue(inst.cost.remote_hop_penalty);
  cost["congestion"] =
      JsonValue(std::string(congestion_kind_name(inst.cost.congestion)));
  root["cost"] = JsonValue(std::move(cost));
  return JsonValue(std::move(root));
}

Instance instance_from_json(const JsonValue& doc) {
  return instance_from_any(doc);
}

Instance instance_from_arena(const util::JsonArena::View& doc) {
  return instance_from_any(doc);
}

Instance instance_from_json_text(std::string_view text) {
  const util::JsonArena arena = util::parse_json_arena(text);
  return instance_from_any(arena.root());
}

JsonValue assignment_to_json(const Assignment& a) {
  JsonArray choices;
  choices.reserve(a.provider_count());
  for (ProviderId l = 0; l < a.provider_count(); ++l) {
    const std::size_t c = a.choice(l);
    choices.push_back(c == kRemote ? JsonValue(nullptr) : JsonValue(c));
  }
  return JsonValue(JsonObject{
      {"format_version", JsonValue(kIoFormatVersion)},
      {"choices", JsonValue(std::move(choices))},
      {"social_cost", JsonValue(a.social_cost())},
      {"potential", JsonValue(a.potential())}});
}

Assignment assignment_from_json(const Instance& inst, const JsonValue& doc) {
  const JsonArray& choices = doc.at("choices").as_array();
  if (choices.size() != inst.provider_count()) {
    throw std::invalid_argument("io: profile size mismatch");
  }
  Assignment a(inst);
  for (ProviderId l = 0; l < choices.size(); ++l) {
    if (choices[l].is_null()) continue;  // remote
    const std::string where = "choices[" + std::to_string(l) + "]";
    const std::size_t c = checked_index(choices[l], where,
                                        inst.cloudlet_count(), "cloudlets");
    if (!a.can_move(l, c)) {
      reject(where, "placing provider " + std::to_string(l) +
                        " on cloudlet " + std::to_string(c) +
                        " violates its capacities");
    }
    a.move(l, c);
  }
  return a;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing '" + path + "'");
}

}  // namespace mecsc::core
