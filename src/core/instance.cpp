#include "core/instance.h"

#include <algorithm>
#include <cassert>

#include "net/topology_zoo.h"
#include "net/transit_stub.h"

namespace mecsc::core {

double Instance::max_compute_demand() const {
  double best = 0.0;
  for (const auto& p : providers) best = std::max(best, p.compute_demand());
  return best;
}

double Instance::max_bandwidth_demand() const {
  double best = 0.0;
  for (const auto& p : providers) best = std::max(best, p.bandwidth_demand());
  return best;
}

Instance generate_instance(const InstanceParams& params, util::Rng& rng) {
  assert(params.provider_count >= 1);

  // --- Topology + MEC overlay --------------------------------------------
  net::Graph topology;
  std::vector<net::NodeId> edge_pref;
  if (params.use_as1755) {
    topology = net::as1755_topology();
  } else {
    net::TransitStubGraph ts =
        net::generate_transit_stub_sized(params.network_size, rng);
    edge_pref = ts.stub_nodes;
    topology = std::move(ts.graph);
  }

  Instance inst{
      net::MecNetwork(std::move(topology), params.mec, rng, edge_pref),
      {},
      {}};

  // --- Cost constants ------------------------------------------------------
  const std::size_t cl_count = inst.network.cloudlet_count();
  inst.cost.alpha.resize(cl_count);
  inst.cost.beta.resize(cl_count);
  for (std::size_t i = 0; i < cl_count; ++i) {
    inst.cost.alpha[i] = rng.uniform_real(params.alpha_lo, params.alpha_hi);
    inst.cost.beta[i] = rng.uniform_real(params.beta_lo, params.beta_hi);
  }
  inst.cost.transfer_price_per_gb =
      rng.uniform_real(params.transfer_price_lo, params.transfer_price_hi);
  inst.cost.processing_price_per_gb =
      rng.uniform_real(params.processing_price_lo, params.processing_price_hi);

  // --- Providers -----------------------------------------------------------
  inst.providers.reserve(params.provider_count);
  const std::size_t dc_count = inst.network.data_center_count();
  for (std::size_t l = 0; l < params.provider_count; ++l) {
    ServiceProvider p;
    p.compute_per_request = rng.uniform_real(params.compute_per_request_lo,
                                             params.compute_per_request_hi);
    p.bandwidth_per_request = rng.uniform_real(
        params.bandwidth_per_request_lo, params.bandwidth_per_request_hi);
    p.requests = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(params.requests_lo),
                        static_cast<std::int64_t>(params.requests_hi)));
    p.service_data_gb =
        rng.uniform_real(params.service_data_gb_lo, params.service_data_gb_hi);
    p.update_fraction = params.update_fraction;
    const double per_request_mb = rng.uniform_real(
        params.request_traffic_mb_lo, params.request_traffic_mb_hi);
    p.traffic_gb =
        per_request_mb * static_cast<double>(p.requests) / 1024.0;
    p.home_dc = static_cast<DataCenterId>(
        rng.uniform_int(0, static_cast<std::int64_t>(dc_count) - 1));
    p.user_region = static_cast<CloudletId>(rng.uniform_int(
        0, static_cast<std::int64_t>(inst.network.cloudlet_count()) - 1));
    // VM boot + software setup proportional to the service image size.
    p.instantiation_cost = inst.cost.vm_boot_cost +
                           inst.cost.processing_price_per_gb *
                               p.service_data_gb * 0.1;
    inst.providers.push_back(p);
  }
  return inst;
}

}  // namespace mecsc::core
