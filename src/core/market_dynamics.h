// Dynamic service market: temporary caching over time (§II-B: "services are
// only cached for temporary and their original services are still kept in
// remote data centers").
//
// Providers arrive and depart across epochs. Each epoch the mechanism
// re-plans the active providers, either by re-running the full LCF
// mechanism (best placement, but cached instances may migrate between
// cloudlets, which costs bandwidth to re-ship the service image) or by
// incremental repair (continuing providers keep their seats; everyone
// selfish best-responds from the previous profile, minimizing churn).
// The tension between placement quality and migration churn is the module's
// subject; bench_dynamics quantifies it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/lcf.h"
#include "util/rng.h"

namespace mecsc::core {

/// How the market re-plans each epoch.
enum class ReplanPolicy {
  /// Re-run the full LCF mechanism on the active set from scratch.
  FullRecompute,
  /// Keep continuing providers seated; run best-response dynamics from the
  /// inherited profile (new arrivals start remote). No leader coordination
  /// beyond the inherited seats.
  IncrementalRepair,
};

const char* replan_policy_name(ReplanPolicy policy);

struct MarketDynamicsParams {
  std::size_t epochs = 20;
  /// Expected number of newly arriving providers per epoch (Poisson-ish:
  /// drawn uniformly from [0, 2*rate]).
  double arrival_rate = 6.0;
  /// Each active provider departs independently with this probability at
  /// the start of an epoch (its cached instance is destroyed; the original
  /// in the remote DC lives on).
  double departure_probability = 0.08;
  std::size_t initial_providers = 40;
  ReplanPolicy policy = ReplanPolicy::FullRecompute;
  LcfOptions lcf;
};

/// Per-epoch market telemetry.
struct EpochStats {
  std::size_t epoch = 0;
  std::size_t active_providers = 0;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  /// Continuing providers whose cached instance changed cloudlet (or moved
  /// between cached and remote) relative to the previous epoch.
  std::size_t migrations = 0;
  double social_cost = 0.0;
  /// Bandwidth cost of re-shipping migrated service images this epoch.
  double migration_cost = 0.0;
  double replan_ms = 0.0;
  bool equilibrium = false;  ///< selfish sub-game converged
};

struct MarketDynamicsResult {
  std::vector<EpochStats> epochs;
  /// Σ over epochs of social cost (the per-epoch operating bill).
  double total_social_cost = 0.0;
  /// Σ over epochs of migration cost (the churn bill).
  double total_migration_cost = 0.0;

  double total_cost() const {
    return total_social_cost + total_migration_cost;
  }
};

/// Simulates `params.epochs` epochs of the market over `pool` (a provider
/// population to draw arrivals from; `params.initial_providers` of them are
/// active at epoch 0). Deterministic given `rng`'s state.
///
/// Migration pricing: moving a cached instance from cloudlet a to cloudlet b
/// re-ships the service image over hops(a, b); caching a previously remote
/// service ships it from the home DC; destroying a cached instance is free
/// (the original was never removed).
MarketDynamicsResult simulate_market(const Instance& pool,
                                     const MarketDynamicsParams& params,
                                     util::Rng& rng);

/// Exposed for tests: the migration cost of one provider moving from seat
/// `from` to seat `to` (seats are cloudlet ids or kRemote).
double migration_cost(const Instance& inst, ProviderId l, std::size_t from,
                      std::size_t to);

}  // namespace mecsc::core
