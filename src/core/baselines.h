// Benchmark algorithms the paper compares against (§IV-A):
//
//  * JoOffloadCache — the joint service-caching + task-offloading approach
//    of [23] (Xu, Chen, Zhou, INFOCOM'18), run *independently by each
//    provider* ("each network service provider runs the algorithm in [23]
//    without communicating with each other"). Each provider optimizes its
//    own congestion-free joint cost, but — as the paper notes — [23] does
//    not model the consistency-update traffic, so that term is absent from
//    its objective (while still being paid in reality).
//
//  * OffloadCache — a greedy that decides offloading and caching
//    *separately* [20]: requests are offloaded to the cloudlet closest to
//    the users (optimal offloading cost), then the service is instantiated
//    there, or at the nearest cloudlet with room. Dollar costs and
//    congestion are ignored entirely when choosing.
//
// Both ignore the service market: no coordination, no congestion awareness.
// Realized costs are always evaluated with the true model of Eq. (3).
#pragma once

#include "core/assignment.h"
#include "core/instance.h"

namespace mecsc::core {

/// Objective [23] optimizes for one provider: congestion-free caching cost
/// without the update-sync component (exposed for tests).
double jo_objective(const Instance& inst, ProviderId l, CloudletId i);

/// Runs JoOffloadCache for all providers. Decisions are made simultaneously
/// against an empty network; conflicts are resolved by admission in provider
/// order, falling back to each provider's next-best feasible choice and
/// finally to the remote cloud. Always returns a feasible assignment.
Assignment run_jo_offload_cache(const Instance& inst);

/// Runs OffloadCache for all providers (admission in provider order, nearest
/// feasible cloudlet to the user region, remote as last resort). Always
/// returns a feasible assignment.
Assignment run_offload_cache(const Instance& inst);

}  // namespace mecsc::core
