// Cost model of service caching (§II-C, Eq. (1)-(3)) plus the remote
// ("do not cache") option that gives the game its title.
//
// Caching SV_l in cloudlet CL_i with |σ_i| tenants costs
//     c_{l,i} = (α_i + β_i)·|σ_i|·u  +  c_l^ins  +  c_{l,i}^bdw ,
// where u is the congestion unit price (folds the dollar scale into the
// α, β ∈ [0,1] draws of §IV-A), c_l^ins is the instantiation cost, and the
// fixed bandwidth term prices the request traffic delivered to the cloudlet
// plus the consistency updates shipped back to the original instance over
// hops(CL_i, home DC of l).
//
// Serving from the remote original instance instead costs the processing
// price plus WAN transfer over the network depth — no congestion term (data
// centers are uncapacitated, §II-A).
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/types.h"

namespace mecsc::core {

/// Congestion unit price u (see file comment). Kept as a single project-wide
/// constant so Eq. (1)-(2) remain literally α_i|σ_i| and β_i|σ_i| in scaled
/// dollars.
inline constexpr double kCongestionUnit = 0.25;

/// Congestion part of Eq. (3): (α_i + β_i) · occupancy · u.
/// `occupancy` counts cached instances in CL_i including the evaluated
/// provider itself.
double congestion_cost(const Instance& inst, CloudletId i,
                       std::size_t occupancy);

/// Fixed (congestion-independent) part of caching SV_l in CL_i:
/// c_l^ins + c_{l,i}^bdw.
double fixed_cache_cost(const Instance& inst, ProviderId l, CloudletId i);

/// Full Eq. (3) cost of caching SV_l in CL_i at the given occupancy.
double cache_cost(const Instance& inst, ProviderId l, CloudletId i,
                  std::size_t occupancy);

/// Cost of *not* caching: requests keep flowing to the original instance in
/// the home data center.
double remote_cost(const Instance& inst, ProviderId l);

/// Congestion-free Eq. (9) cost used inside the GAP reduction:
/// (α_i + β_i)·u + c_l^ins + c_{l,i}^bdw  (occupancy fixed at 1).
double flat_cache_cost(const Instance& inst, ProviderId l, CloudletId i);

/// True when SV_l alone fits CL_i's computing and bandwidth capacities.
bool demand_fits(const Instance& inst, ProviderId l, CloudletId i);

}  // namespace mecsc::core
