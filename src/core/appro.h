// Algorithm 1 ("Appro"): approximation algorithm for service caching with
// non-selfish (fully coordinated) providers (§III-B).
//
// Steps, following the paper:
//  1. Split every cloudlet into n_i single-instance virtual cloudlets
//     (Eq. (7), virtual_cloudlet.h).
//  2. Treat each virtual cloudlet as a GAP knapsack under the congestion-
//     free cost of Eq. (9): (α_i + β_i) + c_l^ins + c_i^bdw.
//  3. Solve the GAP instance with the Shmoys-Tardos framework [34]. Because
//     step 1 restricts each virtual cloudlet to a single instance, the
//     default inner solver is the integral transportation formulation
//     (exact, ratio 1 <= 2); the general LP-rounding solver is available for
//     fidelity to [34] and for the Lemma-2 study.
//  4. Move all services assigned to CL_i's virtual cloudlets into CL_i.
//
// The strategy space includes "do not cache" (serve from the home data
// center), so the mechanism never rejects a provider outright: when the
// virtual cloudlets cannot hold everyone, the optimizer sends the
// least-profitable services to the remote tier.
#pragma once

#include <optional>

#include "core/assignment.h"
#include "core/instance.h"
#include "core/virtual_cloudlet.h"

namespace mecsc::core {

struct ApproOptions {
  enum class InnerSolver {
    Transportation,  ///< exact min-cost-flow on the slotted reduction
    ShmoysTardos,    ///< LP relaxation + rounding, as in [34]
  };
  InnerSolver solver = InnerSolver::Transportation;
  /// Congestion-aware slot pricing (Transportation solver only; default on).
  /// Algorithm 1 literally prices every virtual cloudlet of CL_i at the
  /// congestion-free Eq. (9). With this flag, the k-th slot of CL_i instead
  /// carries the *marginal* congestion cost (α_i+β_i)·u·(2k-1), which
  /// telescopes to the exact quadratic congestion term of the social cost —
  /// so the inner solve returns the true social optimum of the slotted
  /// relaxation (a strictly stronger OPT' guide for the Stackelberg leader;
  /// Lemma 1 feasibility and the Lemma 2 bound are unaffected since the
  /// returned placement is never costlier under Eq. (6)). Slot multiplicity
  /// follows Eq. (8): each virtual cloudlet may hold up to n'_max services,
  /// with physical capacities re-checked when merging onto the cloudlet.
  /// Set to false to run the paper's literal congestion-free pricing
  /// (benchmarked as an ablation in bench_ablation).
  bool congestion_aware = true;
  /// Override the demand maxima used in Eq. (7) (Fig. 7 sweeps these);
  /// non-positive means "use the instance's actual maxima".
  double a_max_override = 0.0;
  double b_max_override = 0.0;
};

struct ApproResult {
  Assignment assignment;
  VirtualCloudletSplit split;
  /// C': social cost under the congestion-free cost function of Eq. (9)
  /// (remote providers contribute their remote cost).
  double flat_cost = 0.0;
  /// LP lower bound from the Shmoys-Tardos path, when that solver ran.
  std::optional<double> lp_bound;
  /// Providers the rounding could not place within physical capacities and
  /// that were diverted to the remote tier (only possible with the
  /// ShmoysTardos inner solver, whose loads may exceed capacity by one
  /// service).
  std::size_t evicted_to_remote = 0;
};

/// Runs Algorithm 1. The result's assignment is always feasible.
ApproResult run_appro(const Instance& inst, const ApproOptions& options = {});

}  // namespace mecsc::core
