// Solution representation: which cloudlet (or the remote cloud) serves each
// provider's service, with incremental occupancy/load bookkeeping, cost
// evaluation (Eq. (5)-(6)) and feasibility checking.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.h"
#include "core/instance.h"
#include "core/types.h"

namespace mecsc::core {

/// A (possibly partial-in-construction, always structurally consistent)
/// strategy profile σ: provider -> cloudlet id or kRemote.
class Assignment {
 public:
  /// All providers start remote (the empty-cache profile).
  explicit Assignment(const Instance& inst);

  const Instance& instance() const { return *inst_; }
  std::size_t provider_count() const { return choice_.size(); }

  /// Current strategy of provider l.
  std::size_t choice(ProviderId l) const { return choice_[l]; }

  /// Number of cached instances in cloudlet i (|σ_i|).
  std::size_t occupancy(CloudletId i) const { return occupancy_[i]; }

  /// Resource headroom of cloudlet i under the current profile.
  double compute_left(CloudletId i) const;
  double bandwidth_left(CloudletId i) const;

  /// True when moving provider l to `target` (a cloudlet id or kRemote)
  /// respects both capacities of the target (l's current seat is vacated
  /// first). Moving to kRemote is always allowed.
  bool can_move(ProviderId l, std::size_t target) const;

  /// Moves provider l to `target`. Precondition: can_move(l, target).
  void move(ProviderId l, std::size_t target);

  /// Cost currently paid by provider l (Eq. (5) plus the remote option).
  double provider_cost(ProviderId l) const;

  /// Cost provider l *would* pay after moving to `target`, everything else
  /// fixed. Target may equal the current choice (returns provider_cost).
  double provider_cost_if(ProviderId l, std::size_t target) const;

  /// Social cost: Σ_l provider_cost(l) (Eq. (6)).
  double social_cost() const;

  /// Exact potential Φ(σ) of the singleton congestion game:
  ///   Φ = Σ_i (α_i+β_i)·u·(1 + 2 + ... + σ_i) + Σ_l fixed(l, σ(l)).
  /// Any unilateral move changes Φ by exactly the mover's cost change, so
  /// best-response dynamics strictly decrease Φ (Lemma 3 / Rosenthal).
  double potential() const;

  /// True when every cloudlet's computing and bandwidth loads are within
  /// capacity.
  bool feasible() const;

  /// Providers currently cached in cloudlet i.
  std::vector<ProviderId> tenants(CloudletId i) const;

  bool operator==(const Assignment& other) const {
    return choice_ == other.choice_;
  }

 private:
  const Instance* inst_;
  std::vector<std::size_t> choice_;    // provider -> cloudlet or kRemote
  std::vector<std::size_t> occupancy_; // per cloudlet
  std::vector<double> compute_load_;   // per cloudlet
  std::vector<double> bandwidth_load_; // per cloudlet
};

}  // namespace mecsc::core
