#include "core/solver_api.h"

#include <stdexcept>

#include "core/appro.h"
#include "core/baselines.h"
#include "core/congestion_game.h"
#include "core/lcf.h"
#include "core/social_optimum.h"
#include "util/json.h"
#include "util/timer.h"

namespace mecsc::core {

const std::vector<std::string>& solver_algorithm_names() {
  static const std::vector<std::string> names = {
      "appro", "appro-literal", "jo", "lcf", "offload", "selfish", "optimal"};
  return names;
}

bool solver_algorithm_known(const std::string& name) {
  for (const std::string& n : solver_algorithm_names()) {
    if (n == name) return true;
  }
  return false;
}

namespace {

/// Shared semantic decode; see the header note on the two overloads.
template <class Doc>
SolveSpec solve_spec_from_any(const Doc& doc) {
  SolveSpec spec;
  if (doc.contains("algorithm")) {
    spec.algorithm = std::string(doc.at("algorithm").as_string());
  }
  if (doc.contains("one_minus_xi")) {
    const auto& v = doc.at("one_minus_xi");
    if (!v.is_number()) {
      throw std::invalid_argument("field \"one_minus_xi\" must be a number");
    }
    spec.one_minus_xi = v.as_number();
  }
  if (!solver_algorithm_known(spec.algorithm)) {
    throw std::invalid_argument("unknown algorithm \"" + spec.algorithm +
                                "\"");
  }
  return spec;
}

}  // namespace

SolveSpec solve_spec_from_json(const util::JsonValue& doc) {
  return solve_spec_from_any(doc);
}

SolveSpec solve_spec_from_arena(const util::JsonArena::View& doc) {
  return solve_spec_from_any(doc);
}

SolveSpec decode_solve_spec(const char* data, std::size_t size) {
  const util::JsonArena arena =
      util::parse_json_arena(std::string_view(data, size));
  return solve_spec_from_any(arena.root());
}

std::string SolveSpec::cache_key() const {
  // JsonValue's number formatting (%.17g) round-trips doubles exactly, so
  // distinct ξ values never collide in the key.
  std::string key = "alg=" + algorithm;
  if (algorithm == "lcf") {
    key += "|one_minus_xi=" + util::JsonValue(one_minus_xi).dump();
  }
  return key;
}

namespace {

SolveOutcome dispatch_solver(const Instance& inst, const SolveSpec& spec) {
  if (spec.algorithm == "lcf") {
    LcfOptions options;
    options.coordinated_fraction = 1.0 - spec.one_minus_xi;
    return {run_lcf(inst, options).assignment, true};
  }
  if (spec.algorithm == "appro") {
    return {run_appro(inst).assignment, true};
  }
  if (spec.algorithm == "appro-literal") {
    ApproOptions options;
    options.congestion_aware = false;
    return {run_appro(inst, options).assignment, true};
  }
  if (spec.algorithm == "jo") {
    return {run_jo_offload_cache(inst), true};
  }
  if (spec.algorithm == "offload") {
    return {run_offload_cache(inst), true};
  }
  if (spec.algorithm == "selfish") {
    return {best_response_dynamics(
                Assignment(inst),
                std::vector<bool>(inst.provider_count(), true))
                .assignment,
            true};
  }
  if (spec.algorithm == "optimal") {
    const auto opt = solve_social_optimum(inst);
    return {opt.assignment, opt.proven_optimal};
  }
  std::string valid;
  for (const std::string& n : solver_algorithm_names()) {
    valid += valid.empty() ? n : "|" + n;
  }
  throw std::invalid_argument("unknown algorithm '" + spec.algorithm +
                              "' (valid: " + valid + ")");
}

}  // namespace

SolveOutcome run_solver(const Instance& inst, const SolveSpec& spec) {
  return run_solver(inst, spec, SolveContext{});
}

SolveOutcome run_solver(const Instance& inst, const SolveSpec& spec,
                        const SolveContext& ctx) {
  // Install the tap before opening "solver.run" so the wrapper span itself
  // lands in the caller's trace; restored (RAII) before returning.
  const obs::ProfilerListenerScope listener(ctx.span_listener);
  const util::Timer timer;
  SolveOutcome outcome = [&] {
    MECSC_PROFILE_SCOPE("solver.run");
    return dispatch_solver(inst, spec);
  }();
  outcome.wall_solve_ms = timer.elapsed_ms();
  return outcome;
}

}  // namespace mecsc::core
