// Problem instance of the service-caching game: the two-tiered MEC network,
// the set of network service providers (NSPs), and the cost-model constants.
// The generator reproduces the paper's parameter settings (§IV-A).
#pragma once

#include <cstddef>
#include <vector>

#include "core/congestion_model.h"
#include "core/types.h"
#include "net/mec_network.h"
#include "util/rng.h"

namespace mecsc::core {

/// One network service provider sp_l and its service SV_l (§II-B). Each
/// provider wants to cache exactly one service.
struct ServiceProvider {
  /// a_l: computing resource (VM units) consumed per user request.
  double compute_per_request = 0.0;
  /// b_l: bandwidth (Mbps) assigned to each user request.
  double bandwidth_per_request = 0.0;
  /// r_l: number of user requests the service must serve.
  std::size_t requests = 0;
  /// c_l^ins: cost of instantiating an instance of SV_l in a cloudlet VM
  /// (VM boot + software setup, proportional to the service data volume).
  double instantiation_cost = 0.0;
  /// Data volume of the service image/state, in GB (paper: 1-5 GB).
  double service_data_gb = 0.0;
  /// Fraction of the data volume that must be synchronized back to the
  /// original instance (paper: 10%).
  double update_fraction = 0.10;
  /// Aggregate request traffic processed by the service per charging period,
  /// in GB (paper: each request carries 10-200 MB).
  double traffic_gb = 0.0;
  /// Data center hosting the original instance of SV_l.
  DataCenterId home_dc = 0;
  /// Cloudlet whose vicinity hosts the service's user population. Request
  /// traffic is priced by hop distance from this region to the serving
  /// location; the OffloadCache baseline greedily caches here.
  CloudletId user_region = 0;

  /// a_l * r_l — total computing demand placed on the chosen cloudlet.
  double compute_demand() const {
    return compute_per_request * static_cast<double>(requests);
  }
  /// b_l * r_l — total bandwidth demand placed on the chosen cloudlet.
  double bandwidth_demand() const {
    return bandwidth_per_request * static_cast<double>(requests);
  }
  /// GB that must be synchronized to the original instance.
  double update_volume_gb() const { return service_data_gb * update_fraction; }
};

/// Cost-model constants (§II-C). Congestion terms follow the proportional
/// model of Eq. (1)-(2); fixed terms are priced per GB like public-cloud
/// price lists.
struct CostParams {
  /// alpha_i, beta_i per cloudlet: congestion sensitivity of computing and
  /// bandwidth resources (paper: drawn from [0, 1]).
  std::vector<double> alpha;
  std::vector<double> beta;
  /// $ per GB transmitted (paper: [0.05, 0.12]).
  double transfer_price_per_gb = 0.085;
  /// $ per GB processed (paper: [0.15, 0.22]).
  double processing_price_per_gb = 0.185;
  /// Base cost of booting one VM in a cloudlet.
  double vm_boot_cost = 0.10;
  /// Multiplier on the remote-service cost reflecting WAN/backhaul usage of
  /// requests served by the original instance; calibrated so that caching is
  /// usually, but not always, the cheaper choice.
  double remote_hop_penalty = 1.0;
  /// Congestion shape f(k) (§II-C's extension point: any non-decreasing
  /// model). Default is the paper's proportional model.
  CongestionKind congestion = CongestionKind::Linear;
};

/// A complete instance. Owns the network by value; cheap to move.
struct Instance {
  net::MecNetwork network;
  std::vector<ServiceProvider> providers;
  CostParams cost;

  std::size_t provider_count() const { return providers.size(); }
  std::size_t cloudlet_count() const { return network.cloudlet_count(); }

  /// max_l a_l * r_l over providers (0 when empty).
  double max_compute_demand() const;
  /// max_l b_l * r_l over providers (0 when empty).
  double max_bandwidth_demand() const;
};

/// Generator knobs; defaults are the paper's §IV-A settings.
struct InstanceParams {
  std::size_t network_size = 100;   ///< switch-node count (paper: 50-400)
  std::size_t provider_count = 100;  ///< |N| (paper: 100)
  /// Per-request demands. Chosen so that ~100 providers load 10%-of-network
  /// cloudlets to a realistic contention level.
  double compute_per_request_lo = 0.05;  ///< VM units
  double compute_per_request_hi = 0.20;
  double bandwidth_per_request_lo = 1.0;  ///< Mbps
  double bandwidth_per_request_hi = 5.0;
  std::size_t requests_lo = 10;
  std::size_t requests_hi = 40;
  double service_data_gb_lo = 1.0;  ///< paper: 1-5 GB
  double service_data_gb_hi = 5.0;
  double request_traffic_mb_lo = 10.0;   ///< paper: 10-200 MB
  double request_traffic_mb_hi = 200.0;
  double update_fraction = 0.10;  ///< paper: 10%
  double alpha_lo = 0.0, alpha_hi = 1.0;  ///< paper: [0, 1]
  double beta_lo = 0.0, beta_hi = 1.0;
  double transfer_price_lo = 0.05, transfer_price_hi = 0.12;
  double processing_price_lo = 0.15, processing_price_hi = 0.22;
  /// If true the MEC network is built on the AS1755 backbone instead of a
  /// GT-ITM-style transit-stub graph (network_size is then ignored).
  bool use_as1755 = false;
  net::MecNetworkParams mec;
};

/// Generates a random instance per the paper's settings; deterministic given
/// `rng`'s state.
Instance generate_instance(const InstanceParams& params, util::Rng& rng);

}  // namespace mecsc::core
