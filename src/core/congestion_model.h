// Pluggable congestion functions (§II-C).
//
// The paper adopts the proportional model c ∝ |σ_i| "for simplicity" and
// notes that the derivations rely only on the cost being *non-decreasing*
// in the congestion level, so "the proportional congestion cost model can be
// easily extended to consider other complicated non-decreasing cost models".
// This module implements that extension: a congestion shape f(k) with
//   per-tenant congestion cost at occupancy k = (α_i + β_i) · u · f(k).
// Every shape is non-decreasing, so:
//  * the game remains a (singleton) congestion game with the Rosenthal
//    potential Φ_cong = Σ_i (α_i+β_i)·u·Σ_{j=1..σ_i} f(j)  (Lemma 3 carries
//    over: best-response dynamics converge to a pure NE);
//  * Appro's congestion-aware slot pricing uses the exact marginal social
//    congestion of the k-th tenant, k·f(k) − (k−1)·f(k−1), which is
//    non-decreasing whenever k·f(k) is convex — true for all shapes here, so
//    the convex-flow inner solve stays exact.
#pragma once

#include <cstddef>

namespace mecsc::core {

/// Congestion shape f(k), with k the number of cached instances sharing the
/// cloudlet (k >= 1). f(1) = 1 for every shape so that the congestion-free
/// Eq. (9) cost is shape-independent.
enum class CongestionKind {
  /// f(k) = k — the paper's proportional model (default).
  Linear,
  /// f(k) = k² — superlinear penalty: contention compounds (e.g. memory
  /// bandwidth thrashing between co-located VMs).
  Quadratic,
  /// f(k) = (2^k − 1) / (2 − 1) normalized so f(1)=1 — sharp saturation:
  /// essentially a soft capacity wall.
  Exponential,
  /// f(k) = H_k / H_1 = 1 + 1/2 + ... + 1/k — sublinear (diminishing
  /// marginal interference, e.g. well-isolated VMs).
  Harmonic,
};

/// f(k) for the given shape. Precondition: occupancy >= 1.
double congestion_shape(CongestionKind kind, std::size_t occupancy);

/// Σ_{j=1..occupancy} f(j): the per-cloudlet Rosenthal potential term
/// (0 when occupancy == 0).
double congestion_shape_prefix_sum(CongestionKind kind,
                                   std::size_t occupancy);

/// Marginal social congestion of the k-th tenant:
/// k·f(k) − (k−1)·f(k−1). Non-decreasing in k for every shape (verified by
/// tests), which Appro's convex slot pricing requires.
double congestion_shape_marginal(CongestionKind kind, std::size_t k);

/// Short display name ("linear", "quadratic", ...).
const char* congestion_kind_name(CongestionKind kind);

}  // namespace mecsc::core
