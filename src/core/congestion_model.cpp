#include "core/congestion_model.h"

#include <cassert>
#include <cmath>

namespace mecsc::core {

double congestion_shape(CongestionKind kind, std::size_t occupancy) {
  assert(occupancy >= 1);
  const auto k = static_cast<double>(occupancy);
  switch (kind) {
    case CongestionKind::Linear:
      return k;
    case CongestionKind::Quadratic:
      return k * k;
    case CongestionKind::Exponential:
      return std::pow(2.0, k) - 1.0;
    case CongestionKind::Harmonic: {
      double h = 0.0;
      for (std::size_t j = 1; j <= occupancy; ++j) {
        h += 1.0 / static_cast<double>(j);
      }
      return h;
    }
  }
  return k;
}

double congestion_shape_prefix_sum(CongestionKind kind,
                                   std::size_t occupancy) {
  // Closed forms where cheap; the shapes are evaluated for occupancies in
  // the tens, so the loop fallbacks are also fine.
  const auto k = static_cast<double>(occupancy);
  switch (kind) {
    case CongestionKind::Linear:
      return k * (k + 1.0) / 2.0;
    case CongestionKind::Quadratic:
      return k * (k + 1.0) * (2.0 * k + 1.0) / 6.0;
    default: {
      double sum = 0.0;
      for (std::size_t j = 1; j <= occupancy; ++j) {
        sum += congestion_shape(kind, j);
      }
      return sum;
    }
  }
}

double congestion_shape_marginal(CongestionKind kind, std::size_t k) {
  assert(k >= 1);
  const double now =
      static_cast<double>(k) * congestion_shape(kind, k);
  const double before =
      k == 1 ? 0.0
             : static_cast<double>(k - 1) * congestion_shape(kind, k - 1);
  return now - before;
}

const char* congestion_kind_name(CongestionKind kind) {
  switch (kind) {
    case CongestionKind::Linear:
      return "linear";
    case CongestionKind::Quadratic:
      return "quadratic";
    case CongestionKind::Exponential:
      return "exponential";
    case CongestionKind::Harmonic:
      return "harmonic";
  }
  return "?";
}

}  // namespace mecsc::core
