#include "core/market_dynamics.h"

#include <cassert>

#include "core/congestion_game.h"
#include "obs/profiler.h"
#include "util/timer.h"

namespace mecsc::core {

const char* replan_policy_name(ReplanPolicy policy) {
  switch (policy) {
    case ReplanPolicy::FullRecompute:
      return "full-recompute";
    case ReplanPolicy::IncrementalRepair:
      return "incremental-repair";
  }
  return "?";
}

double migration_cost(const Instance& inst, ProviderId l, std::size_t from,
                      std::size_t to) {
  if (to == kRemote || from == to) return 0.0;  // destroying is free
  const ServiceProvider& p = inst.providers[l];
  const double hops =
      from == kRemote
          ? inst.network.cloudlet_to_dc_hops(to, p.home_dc)  // initial ship
          : inst.network.cloudlet_to_cloudlet_hops(from, to);
  return inst.cost.transfer_price_per_gb * p.service_data_gb * hops;
}

namespace {

/// Sub-instance of the active providers, with the pool-id mapping.
struct ActiveView {
  Instance sub;
  std::vector<ProviderId> pool_id;  // sub index -> pool index
};

ActiveView make_view(const Instance& pool, const std::vector<bool>& active) {
  ActiveView view{Instance{pool.network, {}, pool.cost}, {}};
  for (ProviderId l = 0; l < pool.provider_count(); ++l) {
    if (active[l]) {
      view.sub.providers.push_back(pool.providers[l]);
      view.pool_id.push_back(l);
    }
  }
  return view;
}

}  // namespace

MarketDynamicsResult simulate_market(const Instance& pool,
                                     const MarketDynamicsParams& params,
                                     util::Rng& rng) {
  const std::size_t n = pool.provider_count();
  assert(params.initial_providers <= n);

  std::vector<bool> active(n, false);
  // Seat of each pool provider under the previous epoch's plan (kRemote for
  // inactive providers: their instances are not cached anywhere).
  std::vector<std::size_t> seat(n, kRemote);
  std::vector<bool> was_active(n, false);

  // Epoch 0 starts with a random initial population.
  for (const std::size_t idx :
       rng.sample_without_replacement(n, params.initial_providers)) {
    active[idx] = true;
  }

  MarketDynamicsResult result;
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    MECSC_PROFILE_SCOPE("market.epoch");
    EpochStats stats;
    stats.epoch = epoch;

    if (epoch > 0) {
      // Departures: cached instance destroyed, original lives on.
      for (ProviderId l = 0; l < n; ++l) {
        if (active[l] && rng.bernoulli(params.departure_probability)) {
          active[l] = false;
          seat[l] = kRemote;
          ++stats.departures;
        }
      }
      // Arrivals from the inactive part of the pool.
      const auto want = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(
                                 2.0 * params.arrival_rate)));
      std::vector<ProviderId> inactive;
      for (ProviderId l = 0; l < n; ++l) {
        if (!active[l]) inactive.push_back(l);
      }
      rng.shuffle(inactive);
      for (std::size_t k = 0; k < std::min(want, inactive.size()); ++k) {
        active[inactive[k]] = true;
        ++stats.arrivals;
      }
    }

    // --- Re-plan the active set. -----------------------------------------
    const ActiveView view = make_view(pool, active);
    util::Timer timer;
    Assignment plan(view.sub);
    {
      MECSC_PROFILE_SCOPE("market.replan");
      if (params.policy == ReplanPolicy::FullRecompute) {
        const LcfResult lcf = run_lcf(view.sub, params.lcf);
        plan = lcf.assignment;
        stats.equilibrium = lcf.converged;
      } else {
        // Inherit seats (jointly feasible: they were feasible last epoch and
        // departures only freed capacity), then repair by best response.
        for (std::size_t j = 0; j < view.pool_id.size(); ++j) {
          const std::size_t s = seat[view.pool_id[j]];
          if (s != kRemote) {
            assert(plan.can_move(j, s));
            plan.move(j, s);
          }
        }
        const GameResult game = best_response_dynamics(
            std::move(plan),
            std::vector<bool>(view.sub.provider_count(), true));
        plan = game.assignment;
        stats.equilibrium = game.converged;
      }
    }
    stats.replan_ms = timer.elapsed_ms();

    // --- Accounting. -------------------------------------------------------
    stats.active_providers = view.sub.provider_count();
    stats.social_cost = plan.social_cost();
    for (std::size_t j = 0; j < view.pool_id.size(); ++j) {
      const ProviderId l = view.pool_id[j];
      const std::size_t new_seat = plan.choice(j);
      stats.migration_cost +=
          migration_cost(view.sub, j, seat[l], new_seat);
      if (was_active[l] && new_seat != seat[l]) ++stats.migrations;
      seat[l] = new_seat;
    }
    was_active = active;

    result.total_social_cost += stats.social_cost;
    result.total_migration_cost += stats.migration_cost;
    result.epochs.push_back(stats);
  }
  return result;
}

}  // namespace mecsc::core
