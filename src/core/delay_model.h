// Analytic service-delay model for a placement.
//
// The paper's motivation is motion-to-photon latency: caching at the edge
// shortens the network path but a congested cloudlet queues requests. This
// module quantifies both effects analytically (complementing the
// discrete-event emulator's measured latencies):
//
//  * network delay = hops(user region -> serving location) x per-hop delay;
//  * processing delay at a cloudlet = M/M/1 sojourn time 1/(μ_i - λ_i),
//    where λ_i aggregates the request rates of the services cached in CL_i
//    and μ_i is proportional to the cloudlet's computing capacity —
//    congestion shows up as queueing, exactly the "congestion will
//    eventually push up its processing delay" effect of §I;
//  * remote processing uses an uncongested (capacity-rich) data-center rate.
#pragma once

#include <cstddef>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace mecsc::core {

struct DelayParams {
  /// Wall time over which each provider's r_l requests arrive (the request
  /// rate of provider l is r_l / horizon_s).
  double horizon_s = 60.0;
  /// Requests/second one VM unit of cloudlet capacity can serve: cloudlet
  /// service rate μ_i = per_vm_service_rate * C(CL_i).
  double per_vm_service_rate = 0.4;
  /// Per-hop network latency (propagation + forwarding).
  double per_hop_delay_s = 0.0005;
  /// Data centers serve at this multiple of the largest cloudlet rate
  /// (uncapacitated tier, §II-A).
  double dc_speedup = 8.0;
};

/// Delay verdict for one provider's requests under a placement.
struct ProviderDelay {
  ProviderId provider = 0;
  double network_delay_s = 0.0;
  double processing_delay_s = 0.0;
  bool stable = true;  ///< false when the serving queue is overloaded (λ>=μ)
  double total_s() const { return network_delay_s + processing_delay_s; }
};

struct DelayReport {
  std::vector<ProviderDelay> providers;
  /// Request-weighted mean total delay over providers with stable queues.
  double mean_delay_s = 0.0;
  /// Worst stable provider delay.
  double max_delay_s = 0.0;
  /// Providers whose serving cloudlet is overloaded (unstable queue).
  std::size_t overloaded_providers = 0;
  /// Utilization λ_i/μ_i per cloudlet.
  std::vector<double> cloudlet_utilization;
};

/// Evaluates the analytic delay of every provider under placement `a`.
DelayReport evaluate_delay(const Assignment& a, const DelayParams& params = {});

}  // namespace mecsc::core
