#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

namespace mecsc::util {

namespace {
[[noreturn]] void type_error(const char* want) {
  throw JsonError(std::string("json: value is not ") + want);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("a bool");
}

double JsonValue::as_number() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  type_error("a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("a string");
}

const JsonArray& JsonValue::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("an array");
}

const JsonObject& JsonValue::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("an object");
}

JsonArray& JsonValue::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("an array");
}

JsonObject& JsonValue::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("an object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& o = as_object();
  const auto it = o.find(key);
  if (it == o.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  const auto* o = std::get_if<JsonObject>(&value_);
  return o != nullptr && o->count(key) > 0;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void json_append_number(std::string& out, double d) {
  if (!std::isfinite(d)) throw JsonError("json: non-finite number");
  char buf[32];
  // Integers are emitted without a fractional part for readability.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  out += buf;
}

namespace {

struct Dumper {
  std::string os;
  int indent;

  void newline(int depth) {
    if (indent <= 0) return;
    os += '\n';
    os.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void dump(const JsonValue& v, int depth) {
    if (v.is_null()) {
      os += "null";
    } else if (v.is_bool()) {
      os += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
      json_append_number(os, v.as_number());
    } else if (v.is_string()) {
      json_append_escaped(os, v.as_string());
    } else if (v.is_array()) {
      const JsonArray& a = v.as_array();
      if (a.empty()) {
        os += "[]";
        return;
      }
      os += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) os += ',';
        newline(depth + 1);
        dump(a[i], depth + 1);
      }
      newline(depth);
      os += ']';
    } else {
      const JsonObject& o = v.as_object();
      if (o.empty()) {
        os += "{}";
        return;
      }
      os += '{';
      bool first = true;
      for (const auto& [key, val] : o) {
        if (!first) os += ',';
        first = false;
        newline(depth + 1);
        json_append_escaped(os, key);
        os += indent > 0 ? ": " : ":";
        dump(val, depth + 1);
      }
      newline(depth);
      os += '}';
    }
  }
};

}  // namespace

std::string JsonValue::dump(int indent) const {
  Dumper d;
  d.indent = indent;
  d.dump(*this, 0);
  return std::move(d.os);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  const std::string& text_;
  const JsonParseLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw JsonError(
        "json parse error at offset " + std::to_string(pos_) + ": " + what,
        pos_);
  }

  /// RAII depth guard: containers nest through parse_value() recursion, so
  /// bounding the depth bounds the parser's own stack usage against
  /// adversarial input like "[[[[[…".
  struct DepthGuard {
    Parser& p;
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > p.limits_.max_depth) {
        p.fail("nesting deeper than " + std::to_string(p.limits_.max_depth) +
               " levels");
      }
    }
    ~DepthGuard() { --p.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
  };

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (consume_literal("true")) return JsonValue(true);
      fail("bad literal");
    }
    if (c == 'f') {
      if (consume_literal("false")) return JsonValue(false);
      fail("bad literal");
    }
    if (c == 'n') {
      if (consume_literal("null")) return JsonValue(nullptr);
      fail("bad literal");
    }
    return parse_number();
  }

  JsonValue parse_object() {
    DepthGuard depth(*this);
    expect('{');
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(o));
    }
  }

  JsonValue parse_array() {
    DepthGuard depth(*this);
    expect('[');
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(a));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the interchange format never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  bool digit_at(std::size_t i) const {
    return i < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i])) != 0;
  }

  /// Strict RFC 8259 number grammar: [-] int [frac] [exp], where int has
  /// no leading zero. Scanning the grammar explicitly (instead of trusting
  /// std::stod to reject the tail) keeps locale-dependent and non-JSON
  /// spellings — "inf", "nan", hex floats, "1.", ".5", "01" — off the
  /// network boundary.
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit_at(pos_)) fail("expected a value");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("number has a leading zero");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("expected digits after decimal point");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) fail("expected digits in exponent");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ - start > limits_.max_number_length) {
      pos_ = start;
      fail("number longer than " +
           std::to_string(limits_.max_number_length) + " characters");
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      const double d = std::stod(token);
      if (!std::isfinite(d)) {
        pos_ = start;
        fail("number outside double range '" + token + "'");
      }
      return JsonValue(d);
    } catch (const std::logic_error&) {
      // invalid_argument cannot happen after the grammar scan;
      // out_of_range means the magnitude does not fit a double.
      pos_ = start;
      fail("number outside double range '" + token + "'");
    }
  }
};

}  // namespace

JsonValue parse_json(const std::string& text, const JsonParseLimits& limits) {
  Parser p(text, limits);
  return p.parse_document();
}

}  // namespace mecsc::util
