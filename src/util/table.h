// Fixed-width text tables and CSV emission. Every bench binary prints its
// figure/table through this module so the output format is uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mecsc::util {

/// One table cell: text, integer, or real.
using Cell = std::variant<std::string, long long, double>;

/// A simple column-aligned table builder.
///
/// Usage:
///   Table t({"size", "LCF", "JoOffloadCache"});
///   t.add_row({50LL, 1.23, 4.56});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row must have exactly as many cells as there are
  /// headers.
  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Pretty fixed-width rendering with a header separator.
  std::string to_string() const;

  /// RFC-4180-ish CSV rendering (quotes cells containing separators).
  std::string to_csv() const;

  /// Number of decimal places used for double cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double v, int precision);

/// Prints a titled section banner around a table to the given stream:
/// used by bench binaries to label each sub-figure.
void print_section(std::ostream& os, const std::string& title,
                   const Table& table);

}  // namespace mecsc::util
