// Arena-backed, in-situ JSON parse path — the serving hot path's parser.
//
// parse_json (util/json.h) builds a generic DOM: one heap allocation per
// node (std::map members, std::string copies). That is the right reference
// semantics for files and tests, but the solver service decodes a request
// per line at the highest frequency of any code in the system, and the DOM
// allocations dominate the decode profile. This header is the second parse
// path: the whole document lands in two contiguous buffers —
//
//   scratch_  one mutable copy of the input bytes; string tokens are
//             escape-decoded *in place* (decoded text is never longer than
//             its raw spelling), so string values are views into this
//             buffer and never allocate;
//   nodes_    a flat array of fixed-size nodes in document order, sized
//             up front from a structural pre-scan so it never reallocates
//             mid-parse. Containers link their children cjson-style: the
//             parent holds the first-child index, each child the index of
//             its next sibling (indices, not pointers, so the arena can
//             move wholesale).
//
// Parsing is iterative (an explicit open-container stack), so adversarial
// nesting cannot exhaust the call stack; JsonParseLimits::max_depth is
// still enforced for *parity*, not safety.
//
// Parity contract with the DOM path (tested by the shared corpora in
// tests/test_json.cpp and the differential suite in
// tests/test_json_arena.cpp; documented in DESIGN.md):
//   - identical accept/reject decisions on every input;
//   - identical JsonError messages and byte offsets, including the strict
//     RFC 8259 number grammar, the depth limit, and the number-length cap;
//   - canonical re-serialization (dump()) is byte-identical with the
//     JsonValue dump of the same document: members sorted by key, last
//     duplicate wins, same escape and number formatting. The service's
//     digest-keyed result cache relies on this — both parse paths must
//     produce the same cache key for the same instance bytes.
//
// Lifetime/ownership rules: a JsonArena owns its buffers; View cursors and
// the string_views they return borrow from it and are invalidated by
// destroying or moving the arena. Keep the arena alive for as long as any
// cursor or decoded string_view is in flight (in the service: the scope of
// one request).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace mecsc::util {

/// One parsed value. Fixed-size POD; strings are (offset, length) spans of
/// the arena's scratch buffer, containers are (first child, count) with
/// sibling links threading the flat node array.
struct JsonArenaNode {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  /// Object-member name (span of scratch_); key_off == kNoKey for array
  /// elements and the root.
  std::uint32_t key_off = kNoKey;
  std::uint32_t key_len = 0;
  /// Index of the next sibling; 0 means none (node 0 is the root, which
  /// can never be anyone's sibling).
  std::uint32_t next = 0;
  union {
    double number;
    struct {
      std::uint32_t off;
      std::uint32_t len;
    } str;
    struct {
      std::uint32_t first;  ///< first child index (valid when count > 0)
      std::uint32_t count;  ///< direct children
    } cont;
  };

  static constexpr std::uint32_t kNoKey = 0xFFFFFFFFu;

  JsonArenaNode() : number(0.0) {}
};

/// A parsed document: two contiguous buffers plus cursor accessors.
class JsonArena {
 public:
  class View;

  JsonArena() = default;
  JsonArena(JsonArena&&) = default;
  JsonArena& operator=(JsonArena&&) = default;
  JsonArena(const JsonArena&) = delete;
  JsonArena& operator=(const JsonArena&) = delete;

  /// True until parse_json_arena has populated this arena.
  bool empty() const { return nodes_.empty(); }

  /// Cursor onto the document root. Throws JsonError on an empty arena.
  View root() const;

  /// Total parsed values (root included) — the arena analogue of a DOM
  /// node count, used by bench_json to sanity-check coverage.
  std::size_t node_count() const { return nodes_.size(); }

  /// Bytes of the in-situ scratch buffer (== input size).
  std::size_t scratch_bytes() const { return scratch_.size(); }

  /// Canonical serialization of the whole document: members sorted by key
  /// (last duplicate wins), identical bytes to JsonValue::dump() of the
  /// same input. `indent` > 0 pretty-prints exactly like the DOM dumper.
  std::string dump(int indent = 0) const;

 private:
  friend class View;
  friend JsonArena parse_json_arena(std::string_view text,
                                    const JsonParseLimits& limits);

  std::string scratch_;              ///< input copy, strings decoded in situ
  std::vector<JsonArenaNode> nodes_; ///< document-order value array
};

/// Lightweight cursor over one arena value: {arena pointer, node index}.
/// Copyable; borrows the arena (see lifetime rules above). Accessors throw
/// JsonError with the same messages as the JsonValue accessors, so decoding
/// code templated over both document types reports identical errors.
class JsonArena::View {
 public:
  View() = default;

  bool is_null() const { return node().type == JsonArenaNode::Type::Null; }
  bool is_bool() const { return node().type == JsonArenaNode::Type::Bool; }
  bool is_number() const { return node().type == JsonArenaNode::Type::Number; }
  bool is_string() const { return node().type == JsonArenaNode::Type::String; }
  bool is_array() const { return node().type == JsonArenaNode::Type::Array; }
  bool is_object() const { return node().type == JsonArenaNode::Type::Object; }

  bool as_bool() const;
  double as_number() const;
  /// View into the arena scratch buffer — zero-copy, arena-lifetime.
  std::string_view as_string() const;

  /// Forward range over a container's children (Views; objects expose the
  /// member name via View::key()). Satisfies the same range-for shape as
  /// JsonArray/JsonObject so decoders can be templated over both.
  class ChildRange;
  ChildRange as_array() const;   ///< throws unless is_array()
  ChildRange as_object() const;  ///< throws unless is_object()

  /// Direct children of a container (0 for scalars).
  std::size_t size() const;

  /// Object member lookup. Duplicate keys resolve to the *last* occurrence
  /// — the same value std::map assignment keeps on the DOM path. Throws
  /// JsonError "json: missing key 'k'" when absent or not an object.
  View at(std::string_view key) const;
  bool contains(std::string_view key) const;
  double number_at(std::string_view key) const { return at(key).as_number(); }
  std::string_view string_at(std::string_view key) const {
    return at(key).as_string();
  }

  /// Member name when this view was reached as an object member.
  std::string_view key() const;

  /// Canonical serialization of this subtree (same bytes as the DOM dump
  /// of the equivalent JsonValue — the service digests instance subtrees
  /// through this).
  std::string dump(int indent = 0) const;

  /// Materializes this subtree as a DOM value (small subtrees only — the
  /// service converts request ids for response envelopes, never payloads).
  JsonValue to_json_value() const;

 private:
  friend class JsonArena;

  View(const JsonArena* arena, std::uint32_t index)
      : arena_(arena), index_(index) {}

  const JsonArenaNode& node() const { return arena_->nodes_[index_]; }

  const JsonArena* arena_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Forward iteration over direct children via the sibling links.
class JsonArena::View::ChildRange {
 public:
  class iterator {
   public:
    using value_type = View;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const JsonArena* arena, std::uint32_t index)
        : view_(arena, index) {}

    View operator*() const { return view_; }
    const View* operator->() const { return &view_; }
    iterator& operator++() {
      view_.index_ = view_.node().next;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }
    bool operator==(const iterator& o) const {
      return view_.index_ == o.view_.index_ && view_.arena_ == o.view_.arena_;
    }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    View view_;
  };

  ChildRange(const JsonArena* arena, std::uint32_t first, std::uint32_t count)
      : arena_(arena), first_(first), count_(count) {}

  iterator begin() const {
    return count_ == 0 ? end() : iterator(arena_, first_);
  }
  iterator end() const { return iterator(arena_, 0); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// O(i) sibling walk — for small fixed-arity tuples (edge quadruples),
  /// not for scanning long arrays; iterate those.
  View operator[](std::size_t i) const;

 private:
  const JsonArena* arena_;
  std::uint32_t first_;
  std::uint32_t count_;
};

/// Parses a complete JSON document into an arena. Accept/reject decisions,
/// JsonError messages, and byte offsets are identical to parse_json under
/// the same `limits` (the parity contract above).
JsonArena parse_json_arena(std::string_view text,
                           const JsonParseLimits& limits = {});

}  // namespace mecsc::util
