#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mecsc::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 50.0);
  s.p95 = percentile_sorted(samples, 95.0);
  s.p99 = percentile_sorted(samples, 99.0);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / width);
  b = std::clamp<std::ptrdiff_t>(
      b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t b) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(b);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bars =
        peak == 0 ? 0 : counts_[b] * 40 / std::max<std::size_t>(peak, 1);
    os << "[" << bucket_lo(b) << ", " << bucket_lo(b + 1) << ") "
       << std::string(bars, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace mecsc::util
