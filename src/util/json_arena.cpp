#include "util/json_arena.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

namespace mecsc::util {

namespace {

using Type = JsonArenaNode::Type;

[[noreturn]] void type_error(const char* want) {
  // Same spelling as the JsonValue accessors: decoding code templated over
  // both document types must surface identical errors.
  throw JsonError(std::string("json: value is not ") + want);
}

}  // namespace

// ---------------------------------------------------------------------------
// Cursor accessors
// ---------------------------------------------------------------------------

JsonArena::View JsonArena::root() const {
  if (nodes_.empty()) throw JsonError("json: arena is empty");
  return View(this, 0);
}

bool JsonArena::View::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return node().boolean;
}

double JsonArena::View::as_number() const {
  if (!is_number()) type_error("a number");
  return node().number;
}

std::string_view JsonArena::View::as_string() const {
  if (!is_string()) type_error("a string");
  const JsonArenaNode& n = node();
  return std::string_view(arena_->scratch_).substr(n.str.off, n.str.len);
}

JsonArena::View::ChildRange JsonArena::View::as_array() const {
  if (!is_array()) type_error("an array");
  const JsonArenaNode& n = node();
  return ChildRange(arena_, n.cont.first, n.cont.count);
}

JsonArena::View::ChildRange JsonArena::View::as_object() const {
  if (!is_object()) type_error("an object");
  const JsonArenaNode& n = node();
  return ChildRange(arena_, n.cont.first, n.cont.count);
}

std::size_t JsonArena::View::size() const {
  return is_array() || is_object() ? node().cont.count : 0;
}

std::string_view JsonArena::View::key() const {
  const JsonArenaNode& n = node();
  if (n.key_off == JsonArenaNode::kNoKey) return {};
  return std::string_view(arena_->scratch_).substr(n.key_off, n.key_len);
}

JsonArena::View JsonArena::View::at(std::string_view key) const {
  if (!is_object()) type_error("an object");
  // Duplicate keys resolve to the last occurrence — the value std::map
  // assignment keeps on the DOM path, so both paths decode the same data.
  View match;
  bool found = false;
  for (const View member : as_object()) {
    if (member.key() == key) {
      match = member;
      found = true;
    }
  }
  if (!found) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return match;
}

bool JsonArena::View::contains(std::string_view key) const {
  if (!is_object()) return false;
  for (const View member : as_object()) {
    if (member.key() == key) return true;
  }
  return false;
}

JsonArena::View JsonArena::View::ChildRange::operator[](std::size_t i) const {
  if (i >= count_) throw JsonError("json: child index out of range");
  View v(arena_, first_);
  for (; i > 0; --i) v = View(arena_, v.node().next);
  return v;
}

// ---------------------------------------------------------------------------
// Canonical serialization (byte-compatible with JsonValue::dump)
// ---------------------------------------------------------------------------

namespace {

/// Mirrors the DOM Dumper (util/json.cpp) over cursors. Recursion depth is
/// bounded by the max_depth enforced at parse time, so — unlike parsing —
/// recursing here cannot be driven arbitrarily deep by input.
struct ArenaDumper {
  std::string os;
  int indent;

  void newline(int depth) {
    if (indent <= 0) return;
    os += '\n';
    os.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void dump(const JsonArena::View& v, int depth) {
    if (v.is_null()) {
      os += "null";
    } else if (v.is_bool()) {
      os += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
      json_append_number(os, v.as_number());
    } else if (v.is_string()) {
      json_append_escaped(os, v.as_string());
    } else if (v.is_array()) {
      const auto a = v.as_array();
      if (a.empty()) {
        os += "[]";
        return;
      }
      os += '[';
      bool first = true;
      for (const JsonArena::View elem : a) {
        if (!first) os += ',';
        first = false;
        newline(depth + 1);
        dump(elem, depth + 1);
      }
      newline(depth);
      os += ']';
    } else {
      // Canonical member order: sorted by key, duplicates collapsed to the
      // last occurrence — exactly what parsing into std::map produces on
      // the DOM path.
      std::vector<JsonArena::View> members;
      members.reserve(v.size());
      for (const JsonArena::View member : v.as_object()) {
        members.push_back(member);
      }
      std::stable_sort(members.begin(), members.end(),
                       [](const JsonArena::View& a, const JsonArena::View& b) {
                         return a.key() < b.key();
                       });
      if (members.empty()) {
        os += "{}";
        return;
      }
      os += '{';
      bool first = true;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i + 1 < members.size() && members[i].key() == members[i + 1].key())
          continue;  // a later duplicate supersedes this member
        if (!first) os += ',';
        first = false;
        newline(depth + 1);
        json_append_escaped(os, members[i].key());
        os += indent > 0 ? ": " : ":";
        dump(members[i], depth + 1);
      }
      newline(depth);
      os += '}';
    }
  }
};

}  // namespace

std::string JsonArena::View::dump(int indent) const {
  ArenaDumper d;
  d.indent = indent;
  d.dump(*this, 0);
  return std::move(d.os);
}

std::string JsonArena::dump(int indent) const { return root().dump(indent); }

JsonValue JsonArena::View::to_json_value() const {
  if (is_null()) return JsonValue(nullptr);
  if (is_bool()) return JsonValue(as_bool());
  if (is_number()) return JsonValue(as_number());
  if (is_string()) return JsonValue(std::string(as_string()));
  if (is_array()) {
    JsonArray a;
    a.reserve(size());
    for (const View elem : as_array()) a.push_back(elem.to_json_value());
    return JsonValue(std::move(a));
  }
  JsonObject o;
  for (const View member : as_object()) {
    // Assignment, not emplace: duplicate keys keep the last value, same as
    // the DOM parser.
    o[std::string(member.key())] = member.to_json_value();
  }
  return JsonValue(std::move(o));
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

/// Every power of five that fits a uint64 (5^27 is the largest).
constexpr std::array<std::uint64_t, 28> kPow5 = {
    1ull,
    5ull,
    25ull,
    125ull,
    625ull,
    3125ull,
    15625ull,
    78125ull,
    390625ull,
    1953125ull,
    9765625ull,
    48828125ull,
    244140625ull,
    1220703125ull,
    6103515625ull,
    30517578125ull,
    152587890625ull,
    762939453125ull,
    3814697265625ull,
    19073486328125ull,
    95367431640625ull,
    476837158203125ull,
    2384185791015625ull,
    11920928955078125ull,
    59604644775390625ull,
    298023223876953125ull,
    1490116119384765625ull,
    7450580596923828125ull,
};

int bit_width_u128(unsigned __int128 v) {
  const auto hi = static_cast<std::uint64_t>(v >> 64);
  return hi != 0 ? 64 + static_cast<int>(std::bit_width(hi))
                 : static_cast<int>(
                       std::bit_width(static_cast<std::uint64_t>(v)));
}

/// Correctly rounds m * 10^e10 to the nearest double (ties to even) for
/// m != 0 and |e10| <= 27, using exact integer arithmetic only:
///
///   e10 >= 0: m * 10^e = (m * 5^e) * 2^e, and m * 5^e fits 128 bits
///             exactly (m < 2^64, 5^27 < 2^63), so every discarded bit is
///             known when rounding to 53 significant bits.
///   e10 <  0: m * 10^e = (m / 5^p) * 2^-p with p = -e10. The quotient is
///             taken with >= 60 significant bits (the dividend is
///             pre-shifted by `shift`), and the remainder supplies an exact
///             sticky bit, so the rounding decision is again exact.
///
/// Results stay inside [10^-27, 2^64 * 10^27] in magnitude — comfortably
/// normal — so no overflow, underflow, or subnormal case can arise here;
/// every such input takes the slow path instead. Correct rounding is also
/// what glibc's strtod guarantees, which makes this path bit-identical to
/// the DOM converter (a requirement: the canonical %.17g dump feeds the
/// service cache digest).
double exact_scaled_decimal(std::uint64_t m, int e10) {
  unsigned __int128 n;
  int exp2;
  bool sticky = false;
  if (e10 >= 0) {
    n = static_cast<unsigned __int128>(m) * kPow5[static_cast<std::size_t>(e10)];
    exp2 = e10;
  } else {
    const std::uint64_t divisor = kPow5[static_cast<std::size_t>(-e10)];
    const int shift =
        std::max(0, 60 - static_cast<int>(std::bit_width(m)) +
                        static_cast<int>(std::bit_width(divisor)));
    const unsigned __int128 scaled = static_cast<unsigned __int128>(m)
                                     << shift;
    n = scaled / divisor;
    sticky = scaled % divisor != 0;
    exp2 = e10 - shift;
  }
  const int bits = bit_width_u128(n);
  if (bits <= 53) {
    // Only reachable on the multiply branch (the divide branch shifts the
    // quotient to >= 60 bits), so the value is exact: sticky is false.
    return std::ldexp(static_cast<double>(static_cast<std::uint64_t>(n)),
                      exp2);
  }
  const int drop = bits - 53;
  std::uint64_t keep = static_cast<std::uint64_t>(n >> drop);
  const bool round_bit = ((n >> (drop - 1)) & 1) != 0;
  sticky = sticky ||
           (n & ((static_cast<unsigned __int128>(1) << (drop - 1)) - 1)) != 0;
  if (round_bit && (sticky || (keep & 1) != 0)) ++keep;
  return std::ldexp(static_cast<double>(keep), exp2 + drop);
}

/// Iterative in-situ parser. Every scanning decision — offsets consumed,
/// error messages, limit checks — is a line-for-line port of the recursive
/// DOM Parser in util/json.cpp; only value *construction* differs. When
/// changing either parser, change both and re-run the shared corpora in
/// tests/test_json.cpp (the parity gate).
class ArenaParser {
 public:
  ArenaParser(std::string_view text, const JsonParseLimits& limits,
              std::string& scratch, std::vector<JsonArenaNode>& nodes)
      : limits_(limits), scratch_(scratch), nodes_(nodes) {
    scratch_.assign(text.data(), text.size());
    size_ = scratch_.size();
  }

  void parse_document() {
    reserve_nodes();
    skip_ws();
    parse_value_stream();
    skip_ws();
    if (pos_ != size_) fail("trailing characters");
  }

 private:
  /// One open container during parsing: the node plus its trailing child
  /// (for sibling linking). The stack replaces the DOM parser's recursion,
  /// so adversarial nesting cannot exhaust the call stack.
  struct Open {
    std::uint32_t node;
    std::uint32_t last_child;
  };

  const JsonParseLimits& limits_;
  std::string& scratch_;
  std::vector<JsonArenaNode>& nodes_;
  std::size_t pos_ = 0;
  std::size_t size_ = 0;
  std::vector<Open> stack_;
  /// Reused number-token buffer: keeps std::stod's exact accept/reject
  /// semantics (the DOM path's converter) without a per-token allocation.
  std::string number_buf_;

  char* data() { return scratch_.data(); }

  [[noreturn]] void fail(const std::string& what) {
    throw JsonError(
        "json parse error at offset " + std::to_string(pos_) + ": " + what,
        pos_);
  }

  void skip_ws() {
    const char* buf = data();
    while (pos_ < size_ &&
           (buf[pos_] == ' ' || buf[pos_] == '\t' || buf[pos_] == '\n' ||
            buf[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= size_) fail("unexpected end of input");
    return data()[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (scratch_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  /// Sizes the node array by heuristic — canonical instance documents run
  /// ~24 bytes per value, so bytes/16 over-reserves slightly without a
  /// counting pre-pass over the document (measured at a quarter of the
  /// whole parse). Denser documents simply grow the vector: every link is
  /// an index, so reallocation mid-parse is safe, just amortized.
  void reserve_nodes() { nodes_.reserve(size_ / 16 + 16); }

  /// Appends a node and links it to the innermost open container.
  std::uint32_t add_node(Type type, std::uint32_t key_off,
                         std::uint32_t key_len) {
    if (nodes_.size() >= JsonArenaNode::kNoKey) {
      fail("document has too many values");
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    JsonArenaNode n;
    n.type = type;
    n.key_off = key_off;
    n.key_len = key_len;
    if (type == Type::Array || type == Type::Object) n.cont = {0, 0};
    if (!stack_.empty()) {
      Open& top = stack_.back();
      JsonArenaNode& parent = nodes_[top.node];
      if (parent.cont.count == 0) {
        parent.cont.first = idx;
      } else {
        nodes_[top.last_child].next = idx;
      }
      ++parent.cont.count;
      top.last_child = idx;
    }
    nodes_.push_back(n);
    return idx;
  }

  /// "key": — the object-member prefix before a value position.
  void parse_member_key(std::uint32_t& off, std::uint32_t& len) {
    parse_string_in_situ(off, len);
    skip_ws();
    expect(':');
  }

  /// The whole value grammar as one loop: the outer iteration is a value
  /// position (with an optional pending member key), the inner loop closes
  /// completed containers and advances past ','.
  void parse_value_stream() {
    std::uint32_t key_off = JsonArenaNode::kNoKey;
    std::uint32_t key_len = 0;

    for (;;) {
      // --- value position ---
      skip_ws();
      const char c = peek();
      if (c == '{' || c == '[') {
        // Depth check before consuming the bracket: the DOM DepthGuard
        // fires at the offset of the offending opener, and so must this.
        if (stack_.size() + 1 > limits_.max_depth) {
          fail("nesting deeper than " + std::to_string(limits_.max_depth) +
               " levels");
        }
        const bool is_object = c == '{';
        const std::uint32_t node =
            add_node(is_object ? Type::Object : Type::Array, key_off, key_len);
        key_off = JsonArenaNode::kNoKey;
        key_len = 0;
        ++pos_;
        stack_.push_back({node, 0});
        skip_ws();
        if (is_object) {
          if (peek() != '}') {
            parse_member_key(key_off, key_len);
            continue;  // value position for the first member
          }
          ++pos_;
          stack_.pop_back();
        } else {
          if (peek() != ']') continue;  // value position, first element
          ++pos_;
          stack_.pop_back();
        }
        // An empty container closed immediately: it is a completed value.
      } else if (c == '"') {
        std::uint32_t off = 0;
        std::uint32_t len = 0;
        parse_string_in_situ(off, len);
        const std::uint32_t node = add_node(Type::String, key_off, key_len);
        nodes_[node].str = {off, len};
        key_off = JsonArenaNode::kNoKey;
        key_len = 0;
      } else if (c == 't' || c == 'f') {
        if (!consume_literal(c == 't' ? "true" : "false")) {
          fail("bad literal");
        }
        const std::uint32_t node = add_node(Type::Bool, key_off, key_len);
        nodes_[node].boolean = c == 't';
        key_off = JsonArenaNode::kNoKey;
        key_len = 0;
      } else if (c == 'n') {
        if (!consume_literal("null")) fail("bad literal");
        add_node(Type::Null, key_off, key_len);
        key_off = JsonArenaNode::kNoKey;
        key_len = 0;
      } else {
        const double d = parse_number_token();
        const std::uint32_t node = add_node(Type::Number, key_off, key_len);
        nodes_[node].number = d;
        key_off = JsonArenaNode::kNoKey;
        key_len = 0;
      }

      // --- after a completed value: close containers, advance past ',' ---
      for (;;) {
        if (stack_.empty()) return;  // the document root is complete
        skip_ws();
        const bool in_object =
            nodes_[stack_.back().node].type == Type::Object;
        if (peek() == ',') {
          ++pos_;
          if (in_object) {
            skip_ws();
            parse_member_key(key_off, key_len);
          }
          break;  // back to a value position
        }
        expect(in_object ? '}' : ']');
        stack_.pop_back();
        // The closed container is itself a completed value; loop again.
      }
    }
  }

  /// Decodes a string token *in place*: the write cursor starts at the
  /// first content byte and every decoded form is no longer than its raw
  /// spelling, so writes never overtake reads. Character-level logic and
  /// error offsets are identical to the DOM parse_string.
  void parse_string_in_situ(std::uint32_t& out_off, std::uint32_t& out_len) {
    expect('"');
    char* buf = data();
    const std::size_t start = pos_;
    // Until the first escape the decoded string coincides with the raw
    // bytes, so nothing needs to move — scan, don't copy. Most tokens
    // (object keys, enum-like values) finish right here.
    while (pos_ < size_ && buf[pos_] != '"' && buf[pos_] != '\\') ++pos_;
    if (pos_ < size_ && buf[pos_] == '"') {
      out_off = static_cast<std::uint32_t>(start);
      out_len = static_cast<std::uint32_t>(pos_ - start);
      ++pos_;
      return;
    }
    std::size_t w = pos_;
    for (;;) {
      if (pos_ >= size_) fail("unterminated string");
      const char c = buf[pos_++];
      if (c == '"') {
        out_off = static_cast<std::uint32_t>(start);
        out_len = static_cast<std::uint32_t>(w - start);
        return;
      }
      if (c != '\\') {
        buf[w++] = c;
        continue;
      }
      if (pos_ >= size_) fail("unterminated escape");
      const char e = buf[pos_++];
      switch (e) {
        case '"':
          buf[w++] = '"';
          break;
        case '\\':
          buf[w++] = '\\';
          break;
        case '/':
          buf[w++] = '/';
          break;
        case 'n':
          buf[w++] = '\n';
          break;
        case 't':
          buf[w++] = '\t';
          break;
        case 'r':
          buf[w++] = '\r';
          break;
        case 'b':
          buf[w++] = '\b';
          break;
        case 'f':
          buf[w++] = '\f';
          break;
        case 'u': {
          if (pos_ + 4 > size_) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = buf[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the interchange format never emits them). Worst case three
          // decoded bytes for six raw ones, so in-situ still holds.
          if (code < 0x80) {
            buf[w++] = static_cast<char>(code);
          } else if (code < 0x800) {
            buf[w++] = static_cast<char>(0xC0 | (code >> 6));
            buf[w++] = static_cast<char>(0x80 | (code & 0x3F));
          } else {
            buf[w++] = static_cast<char>(0xE0 | (code >> 12));
            buf[w++] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            buf[w++] = static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  bool digit_at(std::size_t i) {
    // Plain range compare, not std::isdigit: identical for every byte in
    // the "C" locale (the only one this program runs in) and free of
    // glibc's per-call locale-table lookup on this hot path.
    return i < size_ && data()[i] >= '0' && data()[i] <= '9';
  }

  /// Strict RFC 8259 number grammar — the DOM parse_number verbatim — with
  /// the mantissa and decimal exponent accumulated during the scan. Tokens
  /// whose mantissa fits a uint64 with |e10| <= 27 (every token the
  /// canonical %.17g/%lld serializer can emit) convert through the exact
  /// integer rounder above; anything else — more than ~19 significant
  /// digits, huge exponents, values near the double range limits — falls
  /// back to the DOM's std::stod converter, keeping accept/reject behavior
  /// and range-error offsets identical across paths by construction.
  double parse_number_token() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    std::uint64_t mantissa = 0;
    bool too_many_digits = false;
    int frac_digits = 0;
    int exp_value = 0;
    bool exp_negative = false;
    const auto accumulate = [&](char c) {
      if (mantissa > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
        too_many_digits = true;
      } else {
        mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
      }
    };
    if (!digit_at(pos_)) fail("expected a value");
    if (data()[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("number has a leading zero");
    } else {
      while (digit_at(pos_)) {
        accumulate(data()[pos_]);
        ++pos_;
      }
    }
    if (pos_ < size_ && data()[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("expected digits after decimal point");
      while (digit_at(pos_)) {
        accumulate(data()[pos_]);
        ++frac_digits;
        ++pos_;
      }
    }
    if (pos_ < size_ && (data()[pos_] == 'e' || data()[pos_] == 'E')) {
      ++pos_;
      if (pos_ < size_ && (data()[pos_] == '+' || data()[pos_] == '-')) {
        exp_negative = data()[pos_] == '-';
        ++pos_;
      }
      if (!digit_at(pos_)) fail("expected digits in exponent");
      while (digit_at(pos_)) {
        // Saturate: the token length cap bounds frac_digits at 64, so any
        // saturated exponent still lands far outside the fast-path window.
        if (exp_value < 1000) {
          exp_value = exp_value * 10 + (data()[pos_] - '0');
        }
        ++pos_;
      }
    }
    if (pos_ - start > limits_.max_number_length) {
      pos_ = start;
      fail("number longer than " +
           std::to_string(limits_.max_number_length) + " characters");
    }
    const int e10 = (exp_negative ? -exp_value : exp_value) - frac_digits;
    if (!too_many_digits && e10 >= -27 && e10 <= 27) {
      if (mantissa == 0) return negative ? -0.0 : 0.0;
      const double magnitude = exact_scaled_decimal(mantissa, e10);
      return negative ? -magnitude : magnitude;
    }
    return convert_number_slow(start);
  }

  /// The DOM converter — std::stod over a copied token — kept as the
  /// reference semantics for tokens outside the fast path's envelope,
  /// including its range rejections (overflow, and underflow-to-subnormal,
  /// which glibc reports as out_of_range).
  double convert_number_slow(std::size_t start) {
    number_buf_.assign(data() + start, pos_ - start);
    try {
      const double d = std::stod(number_buf_);
      if (!std::isfinite(d)) {
        pos_ = start;
        fail("number outside double range '" + number_buf_ + "'");
      }
      return d;
    } catch (const std::logic_error&) {
      // invalid_argument cannot happen after the grammar scan;
      // out_of_range means the magnitude does not fit a double.
      pos_ = start;
      fail("number outside double range '" + number_buf_ + "'");
    }
  }
};

}  // namespace

JsonArena parse_json_arena(std::string_view text,
                           const JsonParseLimits& limits) {
  JsonArena arena;
  ArenaParser p(text, limits, arena.scratch_, arena.nodes_);
  p.parse_document();
  return arena;
}

}  // namespace mecsc::util
