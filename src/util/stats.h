// Streaming and batch statistics used by the benchmark harness to aggregate
// repeated experiment runs (mean, variance, confidence intervals,
// percentiles, histograms).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mecsc::util {

/// Welford streaming accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest / largest observation; 0 when empty.
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); 0 with fewer than two observations.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel aggregation).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over an explicit sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary. The input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Linear-interpolation percentile of a *sorted* sample vector;
/// q in [0, 100]. Returns 0 for an empty vector.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }

  /// Lower edge of bucket b.
  double bucket_lo(std::size_t b) const;

  /// Renders a compact ASCII bar chart (one line per bucket).
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mecsc::util
