// Minimal data-parallel helpers for the experiment harness.
//
// Benches repeat independent seeded experiments; parallel_for fans them out
// across hardware threads while keeping results deterministic (each index
// writes only its own slot, and all randomness is derived from per-index
// seeds, never from thread identity or timing).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace mecsc::util {

/// Number of worker threads parallel_for uses by default.
std::size_t default_thread_count();

/// Runs fn(i) for every i in [0, count) across up to `threads` threads
/// (0 = default_thread_count()). Blocks until all complete. If any
/// invocation throws, one of the exceptions is rethrown after all workers
/// finish. fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Maps fn over [0, count), collecting results in index order.
/// fn must return a default-constructible, movable T.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, Fn&& fn,
                            std::size_t threads = 0) {
  std::vector<T> out(count);
  parallel_for(
      count, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace mecsc::util
