#include "util/parallel.h"

#include <algorithm>
#include <atomic>

#include "util/sync.h"

namespace mecsc::util {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  std::size_t workers =
      threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  std::exception_ptr error;  // guarded by error_mutex until the join below

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mecsc::util
