#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace mecsc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::mutex g_observer_mutex;
LogObserver g_observer;  // guarded by g_observer_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void set_log_observer(LogObserver observer) {
  const std::lock_guard<std::mutex> lock(g_observer_mutex);
  g_observer = std::move(observer);
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
  LogObserver observer;
  {
    const std::lock_guard<std::mutex> lock(g_observer_mutex);
    observer = g_observer;
  }
  if (observer) observer(level, message);
}

}  // namespace mecsc::util
