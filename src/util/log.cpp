#include "util/log.h"

#include <atomic>
#include <iostream>
#include <utility>

#include "util/sync.h"

namespace mecsc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Read on every emitted line, replaced only when a bridge is (de)installed:
// a reader/writer lock keeps concurrent log emitters out of each other's way.
SharedMutex g_observer_mutex;
LogObserver g_observer MECSC_GUARDED_BY(g_observer_mutex);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void set_log_observer(LogObserver observer) {
  const WriterMutexLock lock(g_observer_mutex);
  g_observer = std::move(observer);
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
  LogObserver observer;
  {
    const ReaderMutexLock lock(g_observer_mutex);
    observer = g_observer;
  }
  if (observer) observer(level, message);
}

}  // namespace mecsc::util
