// Generic least-recently-used cache with deterministic iteration-free
// semantics: a bounded key → value map that evicts the entry touched
// longest ago once `capacity` entries are resident.
//
// Shared by the solver service result cache (src/svc/result_cache.h) and
// any future bounded memoization; keeping one audited implementation means
// eviction-order bugs get fixed in exactly one place.
//
// Not thread-safe: callers that share an LruCache across threads must hold
// their own lock around every call (svc::ResultCache does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace mecsc::util {

/// Bounded map with least-recently-used eviction. Key must be
/// copy-constructible and strictly ordered (std::map; deliberately not an
/// unordered container — see tools/lint_determinism.py).
template <typename Key, typename Value>
class LruCache {
 public:
  /// A capacity of 0 is a valid always-empty cache: put() discards
  /// immediately (counted as an eviction) and find() always misses.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Entries discarded to make room (including capacity-0 discards).
  std::uint64_t evictions() const { return evictions_; }

  /// Returns the value for `key` and marks it most-recently-used, or
  /// nullptr on miss. The pointer stays valid until the entry is evicted
  /// or erased.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Peek without refreshing recency; nullptr on miss.
  const Value* peek(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or overwrites `key`, marking it most-recently-used either
  /// way, then evicts least-recently-used entries until size() <=
  /// capacity().
  void put(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.emplace_front(key, std::move(value));
      index_[key] = order_.begin();
    }
    while (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Removes `key`; returns whether it was present. Not counted as an
  /// eviction (the caller asked for it).
  bool erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Drops every entry (eviction counter is preserved).
  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<Key, Value>;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< front = most recent, back = next to evict
  std::map<Key, typename std::list<Entry>::iterator> index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace mecsc::util
