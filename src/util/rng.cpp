#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace mecsc::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform_real(double lo, double hi) {
  assert(lo <= hi);
  // 53 random mantissa bits -> uniform in [0, 1).
  const double u =
      static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  return lo + u * (hi - lo);
}

bool Rng::bernoulli(double p) { return uniform_real(0.0, 1.0) < p; }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = uniform_real(0.0, 1.0);
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method; one value per call keeps the stream simple to
  // reason about (no hidden cached spare).
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  assert(n >= 1);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.assign(static_cast<std::size_t>(n), 0.0);
    double acc = 0.0;
    for (std::int64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[static_cast<std::size_t>(k - 1)] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = uniform_real(0.0, 1.0);
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::int64_t>(lo) + 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be randomized.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace mecsc::util
