// Deterministic pseudo-random number generation for reproducible experiments.
//
// All experiment code in this repository draws randomness exclusively through
// mecsc::util::Rng so that every figure/table can be regenerated bit-for-bit
// from a seed. The generator is xoshiro256** (Blackman & Vigna), seeded via
// SplitMix64 so that small human-chosen seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace mecsc::util {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions, although the member helpers below are the
/// preferred interface (they are stable across standard-library versions,
/// which std::uniform_*_distribution is not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two Rng instances with equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in the half-open interval [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed value with rate lambda > 0.
  double exponential(double lambda);

  /// Standard normal via Marsaglia polar method (deterministic given stream).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s = 0 is uniform).
  /// Uses inverse-CDF over precomputed weights: O(log n) after O(n) setup
  /// cached per (n, s).
  std::int64_t zipf(std::int64_t n, double s);

  /// Fisher-Yates shuffle of a vector, deterministic given the stream.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent child generator; used to give each experiment
  /// repetition its own stream without correlations.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached CDF for zipf(n, s); rebuilt when (n, s) changes.
  std::vector<double> zipf_cdf_;
  std::int64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
};

}  // namespace mecsc::util
