// Wall-clock timing for algorithm running-time figures (Fig. 2(d), 3(d),
// 5(b) in the paper).
#pragma once

#include <chrono>

namespace mecsc::util {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mecsc::util
