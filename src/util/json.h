// Minimal JSON value model, parser, and serializer.
//
// Substrate for the instance/solution interchange format (core/io.h) and
// the mecsc CLI: experiments can be generated once, solved by different
// algorithm configurations, and evaluated elsewhere. Self-contained (no
// third-party dependency), supports the full JSON grammar except for
// numbers outside double range.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mecsc::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted, making serialization deterministic.
using JsonObject = std::map<std::string, JsonValue>;

/// Thrown by the parser (with position info) and by typed accessors.
class JsonError : public std::runtime_error {
 public:
  /// offset() value for errors that have no byte position (accessor type
  /// mismatches, serialization failures).
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  explicit JsonError(const std::string& what, std::size_t offset = kNoOffset)
      : std::runtime_error(what), offset_(offset) {}

  /// Byte offset into the parsed text where the problem was detected, or
  /// kNoOffset when the error did not come from the parser.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = kNoOffset;
};

/// One JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(long long i) : value_(static_cast<double>(i)) {}
  JsonValue(std::size_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member access; throws JsonError when absent or not an object.
  const JsonValue& at(const std::string& key) const;

  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Convenience typed lookups with mandatory presence.
  double number_at(const std::string& key) const { return at(key).as_number(); }
  const std::string& string_at(const std::string& key) const {
    return at(key).as_string();
  }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const JsonValue& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Hard limits applied while parsing. The defaults are far above anything
/// the interchange format produces but small enough that adversarial input
/// arriving over the solver-service socket (src/svc/) cannot blow the
/// parser's recursion stack or stall it with pathological tokens.
struct JsonParseLimits {
  /// Maximum container nesting depth ([[ or {{ counts as 2).
  std::size_t max_depth = 128;
  /// Maximum characters in one number token. RFC 8259 numbers that carry
  /// full double precision fit in ~25 characters; longer tokens are either
  /// precision theater or an attack.
  std::size_t max_number_length = 64;
};

/// Parses a complete JSON document; throws JsonError carrying the byte
/// offset of the first problem (also spelled out in the message). Trailing
/// non-whitespace is an error, as are documents exceeding `limits`.
/// Numbers follow the strict RFC 8259 grammar: no leading zeros, no bare
/// '.', no 'inf'/'nan', and a finite double value.
JsonValue parse_json(const std::string& text,
                     const JsonParseLimits& limits = {});

/// Canonical string escaping shared by every JSON serializer in the tree
/// (JsonValue::dump and the arena dump in util/json_arena.h must emit
/// byte-identical output — the service's digest-keyed cache depends on
/// it). Appends the quoted, escaped spelling of `s` to `out`.
void json_append_escaped(std::string& out, std::string_view s);

/// Canonical number formatting for the same contract: integral values
/// below 1e15 print without a fractional part, everything else as %.17g
/// (round-trips doubles exactly). Throws JsonError on non-finite input.
void json_append_number(std::string& out, double d);

}  // namespace mecsc::util
