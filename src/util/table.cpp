#include "util/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mecsc::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
std::string cell_text(const Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  return format_double(std::get<double>(c), precision);
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(cell_text(row[c], precision_));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& r : rendered) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(cell_text(row[c], precision_));
    }
    os << "\n";
  }
  return os.str();
}

void print_section(std::ostream& os, const std::string& title,
                   const Table& table) {
  os << "\n=== " << title << " ===\n" << table.to_string();
}

}  // namespace mecsc::util
