// Annotated synchronization primitives: the only place in the tree allowed
// to touch std::mutex / std::condition_variable / std::shared_mutex
// directly (tools/lint_concurrency.py enforces this).
//
// Every wrapper carries Clang Thread Safety Analysis capability attributes,
// so a Clang build with -Wthread-safety -Wthread-safety-beta (the `tsa`
// CMake preset; promoted to errors under MECSC_WERROR) proves at compile
// time that every field marked MECSC_GUARDED_BY is only touched while its
// mutex is held — on every path, not just the interleavings a TSan run
// happens to hit. On non-Clang compilers the macros expand to nothing and
// the wrappers cost exactly what the raw primitives cost.
//
// Idiom:
//
//   class Counter {
//    public:
//     void bump() {
//       const util::MutexLock lock(mutex_);
//       ++value_;
//     }
//    private:
//     mutable util::Mutex mutex_;
//     int value_ MECSC_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition waits are written as explicit while-loops so the guarded reads
// in the predicate sit in the calling function's scope, where the analysis
// can see the lock is held (a predicate lambda would be analyzed as a
// separate, lock-free function):
//
//   util::MutexLock lock(mutex_);
//   while (!closed_ && items_.empty()) cv_.wait(mutex_);
//
// Lock hierarchy (documented in DESIGN.md "Concurrency invariants" and
// linted by tools/lint_concurrency.py): result cache -> request queue ->
// stats counters; SolverServer::lifecycle_mutex_ -> Connection write lock.
// Every other mutex in the tree is a leaf — never held while calling into
// another locking component.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Capability attribute macros (no-ops outside Clang). Names and semantics
// follow clang.llvm.org/docs/ThreadSafetyAnalysis.html.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define MECSC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MECSC_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a class as a capability (lockable) type.
#define MECSC_CAPABILITY(x) MECSC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires in its constructor and releases in its
/// destructor.
#define MECSC_SCOPED_CAPABILITY MECSC_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while `x` is held.
#define MECSC_GUARDED_BY(x) MECSC_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be dereferenced while `x` is held.
#define MECSC_PT_GUARDED_BY(x) MECSC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively / shared).
#define MECSC_REQUIRES(...) \
  MECSC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MECSC_REQUIRES_SHARED(...) \
  MECSC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and did not hold it on entry).
#define MECSC_ACQUIRE(...) \
  MECSC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MECSC_ACQUIRE_SHARED(...) \
  MECSC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on exit).
#define MECSC_RELEASE(...) \
  MECSC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MECSC_RELEASE_SHARED(...) \
  MECSC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `...` (e.g. true).
#define MECSC_TRY_ACQUIRE(...) \
  MECSC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define MECSC_EXCLUDES(...) MECSC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so on
/// paths it cannot prove, e.g. after an external handoff).
#define MECSC_ASSERT_CAPABILITY(x) \
  MECSC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define MECSC_RETURN_CAPABILITY(x) MECSC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the invariant holds anyway.
#define MECSC_NO_THREAD_SAFETY_ANALYSIS \
  MECSC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mecsc::util {

/// std::mutex carrying the "mutex" capability. Prefer MutexLock over
/// calling lock()/unlock() directly (the lint flags manual pairs).
class MECSC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MECSC_ACQUIRE() { m_.lock(); }
  void unlock() MECSC_RELEASE() { m_.unlock(); }
  bool try_lock() MECSC_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Declares (to the analysis and to readers) that this thread holds the
  /// mutex at this point. No runtime effect.
  void assert_held() const MECSC_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII exclusive lock over a Mutex — the annotated std::lock_guard.
class MECSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MECSC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MECSC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. There is deliberately no
/// predicate overload: waits are written as
///
///   while (!condition) cv.wait(mutex);
///
/// which (a) makes the lost-wakeup-proof loop explicit at the call site
/// (tools/lint_concurrency.py rejects a wait outside a while-loop), and
/// (b) keeps the predicate's guarded reads inside the scope the analysis
/// knows holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen; the caller's while-loop is the
  /// correctness guard.
  void wait(Mutex& mu) MECSC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  /// wait() with a timeout: returns false on timeout, true on a wakeup
  /// (possibly spurious — the caller's while-loop still guards). For
  /// periodic background work that must stay interruptible (the router's
  /// health prober sleeps between sweeps without pinning shutdown).
  bool wait_for_ms(Mutex& mu, double timeout_ms) MECSC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const auto status = cv_.wait_for(
        native, std::chrono::duration<double, std::milli>(timeout_ms));
    native.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex carrying the "shared_mutex" capability: one writer or
/// many readers. For read-mostly state consulted on hot paths (e.g. the
/// log observer).
class MECSC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MECSC_ACQUIRE() { m_.lock(); }
  void unlock() MECSC_RELEASE() { m_.unlock(); }
  bool try_lock() MECSC_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() MECSC_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() MECSC_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class MECSC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MECSC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() MECSC_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class MECSC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) MECSC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() MECSC_RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace mecsc::util
