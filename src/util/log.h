// Minimal leveled logging. Experiments run quiet by default; set the level
// to Debug to trace algorithm internals (best-response steps, LP pivots).
#pragma once

#include <sstream>
#include <string>

namespace mecsc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current global level.
LogLevel log_level();

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

/// Stream-style helpers: LOG_INFO() << "solved in " << t << "s";
#define MECSC_LOG(level) ::mecsc::util::detail::LogStream(level)
#define LOG_DEBUG() MECSC_LOG(::mecsc::util::LogLevel::Debug)
#define LOG_INFO() MECSC_LOG(::mecsc::util::LogLevel::Info)
#define LOG_WARN() MECSC_LOG(::mecsc::util::LogLevel::Warn)
#define LOG_ERROR() MECSC_LOG(::mecsc::util::LogLevel::Error)

}  // namespace mecsc::util
