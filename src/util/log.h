// Minimal leveled logging. Experiments run quiet by default; set the level
// to Debug to trace algorithm internals (best-response steps, LP pivots).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace mecsc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current global level.
LogLevel log_level();

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

/// Additional tap on every emitted line (after the level filter, alongside
/// the stderr sink). obs::install_log_bridge() uses this to forward log
/// lines into the trace/metrics plumbing; pass nullptr to detach.
using LogObserver = std::function<void(LogLevel, const std::string&)>;
void set_log_observer(LogObserver observer);

namespace detail {
/// Builds the message lazily: when the level is suppressed, no stream is
/// constructed and the inserted values are never formatted — only the
/// insertion expressions themselves are evaluated.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {
    if (log_enabled(level)) os_.emplace();
  }
  ~LogStream() {
    if (os_) log_line(level_, os_->str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (os_) *os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> os_;
};
}  // namespace detail

/// Stream-style helpers: LOG_INFO() << "solved in " << t << "s";
#define MECSC_LOG(level) ::mecsc::util::detail::LogStream(level)
#define LOG_DEBUG() MECSC_LOG(::mecsc::util::LogLevel::Debug)
#define LOG_INFO() MECSC_LOG(::mecsc::util::LogLevel::Info)
#define LOG_WARN() MECSC_LOG(::mecsc::util::LogLevel::Warn)
#define LOG_ERROR() MECSC_LOG(::mecsc::util::LogLevel::Error)

}  // namespace mecsc::util
