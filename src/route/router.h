// Digest-sharded front router: terminates client NDJSON connections and
// forwards each request to the `mecsc_serve` backend that owns its
// instance digest, so every backend's single-flight result cache stays
// hot for exactly its shard of the keyspace.
//
// Request path (one hop, no decode):
//
//   client line ──► arena parse ──► canonical dump of the "instance"
//   subtree ──► fnv1a64_hex digest ──► ShardMap preference order ──►
//   forward the *raw line* (with router-minted request_id / traceparent
//   fields spliced in) over a pooled backend connection ──► relay the
//   backend's response line (with "route_backend" spliced in).
//
// The router never decodes an instance and never re-serializes a request
// or response: field injection exploits the protocol's last-duplicate-
// wins rule (util/json_arena.h — both parsers resolve duplicate object
// keys to the final occurrence), so appending `,"key":value` before the
// closing '}' of a line overrides the field without touching the rest of
// the bytes.
//
// Spillover + drain share one mechanism: the ShardMap's clockwise
// preference order. A backend is skipped when it is draining (the
// "drain_backend" request), marked unhealthy (probe failures or a failed
// forward), or — when probed load data is fresh — its queue is above the
// spill threshold; the request then lands on the next backend in
// preference order. Because the ring itself never changes, the keys of
// every untouched backend keep their owner (the ≤1/N movement property
// tests/test_shard_map.cpp pins down).
//
// Cross-process tracing: the router opens a "route.request" root span
// (parented on the client's traceparent when present), hangs a
// "route.forward" child on it, and splices *that* span's id into the
// forwarded traceparent — so the backend's "svc.request" root parents on
// the router's forward span and the two processes' spans form one tree.
//
// Router-answered request types (never forwarded): "health" (aggregated
// backend view), "stats", "metrics" (router RED telemetry + per-backend
// "route" section), "drain_backend", "shutdown". Everything else routes:
// requests with an "instance" object by digest, the rest to a fixed
// shard (the empty-digest owner), so placement is a pure function of the
// request bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "obs/tracing.h"
#include "route/shard_map.h"
#include "svc/admin.h"
#include "svc/socket.h"
#include "util/json.h"
#include "util/sync.h"
#include "util/timer.h"

namespace mecsc::route {

struct RouterOptions {
  /// Exactly one of the two endpoints (same contract as ServerOptions):
  /// a Unix-domain socket path, or a loopback TCP port (0 = ephemeral).
  std::string unix_socket_path;
  int tcp_port = -1;

  /// The topology. At least one backend; see ShardMap for the hash
  /// identity rules.
  std::vector<BackendSpec> backends;

  /// Digest extraction parse path (mirrors ServerOptions::use_arena_parser):
  /// arena is the hot path, DOM the differential-testing reference.
  bool use_arena_parser = true;

  /// Health-probe sweep period; <= 0 disables the prober (forward
  /// failures still mark backends unhealthy, but nothing marks them
  /// healthy again — determinism runs disable probing so no probe
  /// traffic consumes backend request-id sequence numbers).
  double health_interval_ms = 1000.0;

  /// Consecutive probe failures before a backend is marked unhealthy.
  std::size_t probe_failure_threshold = 2;

  /// Pre-spill threshold: with fresh probe data, a backend whose queue
  /// occupancy (wall_queue_depth / queue_capacity) is at or above this
  /// fraction is skipped in preference order. >= 1 disables pre-spill
  /// (reactive spill on "overloaded" responses still happens).
  double spill_queue_fraction = 0.9;

  // Observability plumbing, one-to-one with ServerOptions.
  std::string request_log_path;
  double slow_request_ms = -1.0;
  double request_log_max_mb = 0.0;
  double trace_sample_rate = 0.0;
  std::string trace_out;
  std::size_t flight_recorder_capacity = 256;
  int admin_port = -1;
  double telemetry_window_ms = 60000.0;
};

/// Point-in-time router counters for the "stats" response and tests.
struct RouterStats {
  std::uint64_t accepted_connections = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t forwarded = 0;       ///< requests sent to some backend
  std::uint64_t spilled = 0;         ///< landed off their preferred shard
  std::uint64_t backend_reconnects = 0;
  std::uint64_t backend_failures = 0;  ///< forwards that lost a backend
};

/// One backend's live view for health aggregation / the "route" metrics
/// section.
struct BackendView {
  std::string name;
  std::string endpoint;
  std::size_t weight = 1;
  bool draining = false;
  bool healthy = true;
  bool probed = false;  ///< load fields below are fresh probe data
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  double queue_depth = 0.0;       ///< wall_ in serialized form
  double inflight = 0.0;          ///< wall_
  double service_time_ms = 0.0;   ///< wall_
  std::uint64_t forwarded = 0;
  std::uint64_t spilled_to = 0;   ///< received as a spill target
  std::uint64_t failures = 0;
  std::uint64_t reconnects = 0;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the endpoint and spawns the acceptor (+ health prober when
  /// enabled). Throws std::runtime_error when the endpoint cannot be
  /// bound. (Bad topologies throw std::invalid_argument from the
  /// constructor, before any socket exists.)
  void start();

  /// Begins graceful drain: stop accepting, wake blocked readers, finish
  /// in-flight requests. Safe from any thread; idempotent.
  void request_shutdown();

  /// Blocks until the drain completes and every thread is joined.
  void wait();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  int port() const;
  int admin_port() const;
  const std::string& endpoint() const;

  RouterStats stats() const;
  std::vector<BackendView> backend_views() const;

  /// Marks a backend draining so new requests rehash past it (in-flight
  /// forwards finish on their own). Returns false when the name is
  /// unknown or this would leave no backend accepting keys.
  bool drain_backend(const std::string& name);

  /// Router telemetry snapshot + gauges with a "route" section of
  /// per-backend views (the "metrics" response body / admin /stats).
  util::JsonValue metrics_json();
  std::string metrics_prometheus();
  util::JsonValue flight_json() const;

  /// Shard lookup for tests: which backend (index into options.backends)
  /// owns this digest right now, honoring draining/unhealthy skips.
  std::size_t shard_of(const std::string& digest) const;

 private:
  /// Per-backend runtime state: connection pool, health flags, probe
  /// data, counters. Fixed at start() — topology changes are flag flips,
  /// never vector surgery, so sessions index it without a topology lock.
  struct BackendState {
    BackendSpec spec;

    /// Idle pooled connections (exclusive per in-flight request: the
    /// backend's worker pool may interleave responses across a pipelined
    /// connection, so a pooled connection carries one request at a time).
    util::Mutex pool_mutex;
    std::vector<svc::ConnectionPtr> idle MECSC_GUARDED_BY(pool_mutex);

    std::atomic<bool> draining{false};
    std::atomic<bool> healthy{true};

    /// Probe results (prober writes, sessions/exports read).
    mutable util::Mutex health_mutex;
    bool probed MECSC_GUARDED_BY(health_mutex) = false;
    std::size_t queue_capacity MECSC_GUARDED_BY(health_mutex) = 0;
    std::size_t workers MECSC_GUARDED_BY(health_mutex) = 0;
    double queue_depth MECSC_GUARDED_BY(health_mutex) = 0.0;
    double inflight MECSC_GUARDED_BY(health_mutex) = 0.0;
    double service_time_ms MECSC_GUARDED_BY(health_mutex) = 0.0;
    std::size_t probe_failures MECSC_GUARDED_BY(health_mutex) = 0;

    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> spilled_to{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> reconnects{0};
  };

  /// Outcome of one forward attempt chain.
  struct ForwardResult {
    std::string response;      ///< raw backend response line
    std::size_t backend = 0;   ///< index that answered
    bool spilled = false;      ///< not the first preference
    bool ok = false;           ///< relayed response parsed as ok:true
    std::string error_code;    ///< from the relayed response when !ok
  };

  void acceptor_loop();
  void session_loop(svc::ConnectionPtr conn, std::uint32_t ordinal);
  /// Handles one request line end to end (route or answer locally) and
  /// writes the response. Session thread only.
  void process_line(const svc::ConnectionPtr& conn, std::string line,
                    std::uint32_t ordinal);

  /// True when `backend` should be skipped in preference order right now.
  bool should_skip(const BackendState& backend) const;
  /// Forwards `line` down the digest's preference order; nullopt when
  /// every backend failed at the transport level (no response exists).
  std::optional<ForwardResult> forward(const std::string& digest,
                                       const std::string& line);
  /// One attempt against one backend: pooled connection, single retry on
  /// a stale pooled connection, pool return on success. nullopt = the
  /// backend is gone (marked unhealthy).
  std::optional<std::string> forward_once(BackendState& backend,
                                          const std::string& line);

  void prober_loop();
  /// One probe sweep over all backends. Exposed to the loop only.
  void probe_all();

  void record_event(obs::RequestEvent event);
  std::string next_request_id();
  obs::ServiceGauges gauges() const;

  RouterOptions options_;
  std::unique_ptr<ShardMap> shard_map_;  ///< immutable after start()
  std::unique_ptr<svc::Listener> listener_;
  std::vector<std::unique_ptr<BackendState>> backends_;

  obs::ServiceTelemetry telemetry_;
  std::unique_ptr<obs::RequestLog> request_log_;
  std::unique_ptr<obs::TraceWriter> trace_writer_;
  obs::FlightRecorder flight_;
  std::unique_ptr<svc::AdminServer> admin_;

  std::atomic<std::uint64_t> traces_sampled_{0};
  std::atomic<std::uint64_t> traces_kept_{0};
  std::atomic<std::uint64_t> request_id_seq_{0};
  std::atomic<std::size_t> connections_in_flight_{0};

  std::atomic<bool> draining_{false};
  /// Lifecycle lock (same hierarchy slot as SolverServer's): may be held
  /// while writing a drain notice to a Connection; never while touching a
  /// backend pool or stats_mutex_.
  util::Mutex lifecycle_mutex_;
  bool drain_ready_ MECSC_GUARDED_BY(lifecycle_mutex_) = false;
  std::vector<std::weak_ptr<svc::Connection>> conns_
      MECSC_GUARDED_BY(lifecycle_mutex_);
  std::vector<std::thread> session_threads_
      MECSC_GUARDED_BY(lifecycle_mutex_);
  std::thread acceptor_thread_;  ///< start()/wait() only (owning thread)
  std::thread prober_thread_;    ///< start()/wait() only (owning thread)
  util::CondVar drain_cv_;

  /// Prober sleep/wakeup: wait_for_ms between sweeps, notified on drain.
  util::Mutex prober_mutex_;
  bool prober_stop_ MECSC_GUARDED_BY(prober_mutex_) = false;
  util::CondVar prober_cv_;

  /// Leaf lock for the counters.
  mutable util::Mutex stats_mutex_;
  RouterStats counters_ MECSC_GUARDED_BY(stats_mutex_);
};

}  // namespace mecsc::route
