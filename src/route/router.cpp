#include "route/router.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/run_info.h"
#include "svc/client.h"
#include "svc/server.h"
#include "util/json_arena.h"

namespace mecsc::route {
namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

/// Thrown when every backend in a digest's preference order failed at the
/// transport level — there is no backend response to relay.
struct NoBackendError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::string error_line(const JsonValue& id, const std::string& code,
                       const std::string& message,
                       const std::string& request_id = std::string()) {
  JsonObject error;
  error["code"] = JsonValue(code);
  error["message"] = JsonValue(message);
  JsonObject response;
  response["id"] = id;
  response["ok"] = JsonValue(false);
  if (!request_id.empty()) response["request_id"] = JsonValue(request_id);
  response["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(response)).dump();
}

JsonObject ok_envelope(const JsonValue& id, const std::string& type,
                       const std::string& request_id) {
  JsonObject response;
  response["id"] = id;
  response["ok"] = JsonValue(true);
  response["type"] = JsonValue(type);
  response["request_id"] = JsonValue(request_id);
  return response;
}

class GaugeGuard {
 public:
  explicit GaugeGuard(std::atomic<std::size_t>& gauge) : gauge_(gauge) {
    gauge_.fetch_add(1, std::memory_order_relaxed);
  }
  ~GaugeGuard() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  std::atomic<std::size_t>& gauge_;
};

/// Splices `,"key":<value_json>` immediately before the final '}' of a
/// serialized JSON object, exploiting the protocol's last-duplicate-wins
/// rule (util/json_arena.h): both parse paths resolve duplicate object
/// keys to the final occurrence, so the spliced field overrides any
/// earlier one without re-serializing the line. `value_json` must be a
/// complete JSON value; key and value are router-minted (safe charset),
/// never client bytes.
void splice_field(std::string& line, const std::string& key,
                  const std::string& value_json) {
  const std::size_t brace = line.rfind('}');
  if (brace == std::string::npos) return;  // not an object: leave untouched
  // An empty object ("{}" modulo whitespace) takes the field without the
  // leading comma. Routed lines always carry at least "type", but the
  // guard keeps the helper total.
  std::size_t prev = brace;
  while (prev > 0 && (line[prev - 1] == ' ' || line[prev - 1] == '\t'))
    --prev;
  const bool empty_object = prev > 0 && line[prev - 1] == '{';
  line.insert(brace, (empty_object ? "\"" : ",\"") + key + "\":" + value_json);
}

/// Minimal request view over either parse path — the router needs the
/// envelope fields and the canonical instance bytes, never a decode (the
/// whole point: digest extraction costs one parse, zero DOM, zero
/// Instance construction on the arena path).
class RouteDoc {
 public:
  static RouteDoc parse(const std::string& line, bool use_arena) {
    RouteDoc doc;
    if (use_arena) {
      doc.arena_ = util::parse_json_arena(line);
    } else {
      doc.dom_ = util::parse_json(line);
    }
    return doc;
  }

  bool is_object() const {
    return arena() ? arena_.root().is_object() : dom_.is_object();
  }
  bool contains(const std::string& key) const {
    return arena() ? arena_.root().contains(key) : dom_.contains(key);
  }
  JsonValue id() const {
    return arena() ? arena_.root().at("id").to_json_value() : dom_.at("id");
  }
  bool field_is_string(const std::string& key) const {
    return arena() ? arena_.root().at(key).is_string()
                   : dom_.at(key).is_string();
  }
  std::string string_field(const std::string& key) const {
    if (!field_is_string(key))
      throw std::invalid_argument("field \"" + key + "\" must be a string");
    return arena() ? std::string(arena_.root().at(key).as_string())
                   : dom_.at(key).as_string();
  }
  bool instance_is_object() const {
    return arena() ? arena_.root().at("instance").is_object()
                   : dom_.at("instance").is_object();
  }
  /// Canonical dump of the "instance" subtree — byte-identical across
  /// parse paths (the parity contract), hence digest-identical with the
  /// backend's cache-key digest of the same request.
  std::string instance_canonical() const {
    return arena() ? arena_.root().at("instance").dump()
                   : dom_.at("instance").dump();
  }

 private:
  bool arena() const { return !arena_.empty(); }

  JsonValue dom_;
  util::JsonArena arena_;
};

obs::ServiceTelemetry::Options telemetry_options(const RouterOptions& o) {
  obs::ServiceTelemetry::Options t;
  if (o.telemetry_window_ms > 0.0) t.window_ms = o.telemetry_window_ms;
  return t;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      telemetry_(telemetry_options(options_)),
      flight_(options_.flight_recorder_capacity) {
  // Topology errors surface at construction, before any socket exists.
  shard_map_ = std::make_unique<ShardMap>(options_.backends);
  backends_.reserve(options_.backends.size());
  for (const BackendSpec& spec : options_.backends) {
    auto state = std::make_unique<BackendState>();
    state->spec = spec;
    backends_.push_back(std::move(state));
  }
}

Router::~Router() {
  request_shutdown();
  wait();
}

void Router::start() {
  if (!options_.unix_socket_path.empty()) {
    listener_ = std::make_unique<svc::Listener>(
        svc::Listener::listen_unix(options_.unix_socket_path));
  } else if (options_.tcp_port >= 0) {
    listener_ = std::make_unique<svc::Listener>(
        svc::Listener::listen_tcp(options_.tcp_port));
  } else {
    throw std::runtime_error(
        "route: RouterOptions needs unix_socket_path or tcp_port");
  }
  if (!options_.request_log_path.empty()) {
    obs::RequestLog::Options log_options;
    log_options.path = options_.request_log_path;
    log_options.slow_request_ms = options_.slow_request_ms;
    if (options_.request_log_max_mb > 0.0) {
      log_options.max_bytes = static_cast<std::size_t>(
          options_.request_log_max_mb * 1024.0 * 1024.0);
    }
    request_log_ = std::make_unique<obs::RequestLog>(log_options);
  }
  if (!options_.trace_out.empty()) {
    obs::TraceWriter::Options trace_options;
    trace_options.path = options_.trace_out;
    trace_writer_ = std::make_unique<obs::TraceWriter>(trace_options);
  }
  if (options_.admin_port >= 0) {
    svc::AdminServer::Options admin_options;
    admin_options.tcp_port = options_.admin_port;
    admin_options.metrics_handler = [this] { return metrics_prometheus(); };
    admin_options.stats_handler = [this] {
      return metrics_json().dump() + "\n";
    };
    admin_options.flight_handler = [this] {
      return flight_json().dump() + "\n";
    };
    admin_ = std::make_unique<svc::AdminServer>(admin_options);
  }
  if (options_.health_interval_ms > 0.0) {
    prober_thread_ = std::thread([this] { prober_loop(); });
  }
  acceptor_thread_ = std::thread([this] { acceptor_loop(); });
}

int Router::port() const { return listener_ ? listener_->port() : 0; }

int Router::admin_port() const { return admin_ ? admin_->port() : -1; }

const std::string& Router::endpoint() const {
  static const std::string kUnbound = "(unbound)";
  return listener_ ? listener_->endpoint() : kUnbound;
}

void Router::acceptor_loop() {
  std::uint32_t next_ordinal = 0;
  while (true) {
    svc::ConnectionPtr conn = listener_->accept();
    if (!conn) return;
    {
      const util::MutexLock lock(lifecycle_mutex_);
      if (draining_.load(std::memory_order_acquire)) {
        conn->write_line(error_line(JsonValue(nullptr), "shutting_down",
                                    "router is draining"));
        continue;
      }
      conns_.push_back(conn);
      const std::uint32_t ordinal = next_ordinal++;
      session_threads_.emplace_back(
          [this, conn = std::move(conn), ordinal]() mutable {
            session_loop(std::move(conn), ordinal);
          });
    }
    {
      const util::MutexLock lock(stats_mutex_);
      ++counters_.accepted_connections;
    }
  }
}

void Router::session_loop(svc::ConnectionPtr conn, std::uint32_t ordinal) {
  const GaugeGuard in_flight(connections_in_flight_);
  while (true) {
    std::optional<std::string> line = conn->read_line(svc::kMaxRequestBytes);
    if (!line) {
      if (conn->line_overflow()) {
        conn->write_line(error_line(JsonValue(nullptr), "bad_request",
                                    "request line exceeds the size limit"));
      }
      return;
    }
    if (line->empty()) continue;
    {
      const util::MutexLock lock(stats_mutex_);
      ++counters_.requests_total;
    }
    if (draining_.load(std::memory_order_acquire)) {
      {
        const util::MutexLock lock(stats_mutex_);
        ++counters_.responses_error;
      }
      const std::string rid = next_request_id();
      const std::string response = error_line(
          JsonValue(nullptr), "shutting_down", "router is draining", rid);
      conn->write_line(response);
      obs::RequestEvent event;
      event.request_id = rid;
      event.outcome = "shutting_down";
      event.ok = false;
      event.bytes_in = line->size();
      event.bytes_out = response.size() + 1;
      flight_.record(event, nullptr);
      record_event(std::move(event));
      continue;
    }
    process_line(conn, std::move(*line), ordinal);
  }
}

std::string Router::next_request_id() {
  return "r-" + std::to_string(
                    request_id_seq_.fetch_add(1, std::memory_order_relaxed) +
                    1);
}

bool Router::should_skip(const BackendState& backend) const {
  if (backend.draining.load(std::memory_order_acquire)) return true;
  if (!backend.healthy.load(std::memory_order_acquire)) return true;
  if (options_.spill_queue_fraction < 1.0) {
    const util::MutexLock lock(backend.health_mutex);
    if (backend.probed && backend.queue_capacity > 0 &&
        backend.queue_depth >=
            options_.spill_queue_fraction *
                static_cast<double>(backend.queue_capacity)) {
      return true;
    }
  }
  return false;
}

std::size_t Router::shard_of(const std::string& digest) const {
  const std::vector<std::size_t> order = shard_map_->preference(digest);
  for (const std::size_t idx : order) {
    if (!should_skip(*backends_[idx])) return idx;
  }
  return order.front();
}

std::optional<std::string> Router::forward_once(BackendState& backend,
                                                const std::string& line) {
  // Pooled connection first. A pooled connection may have been closed by
  // a restarted backend since it went idle, so one transport failure on a
  // *pooled* connection earns a fresh dial before the backend is written
  // off; a failure on a fresh connection is definitive.
  svc::ConnectionPtr conn;
  bool pooled = false;
  {
    const util::MutexLock lock(backend.pool_mutex);
    if (!backend.idle.empty()) {
      conn = std::move(backend.idle.back());
      backend.idle.pop_back();
      pooled = true;
    }
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!conn) {
      try {
        const svc::Endpoint ep = svc::parse_endpoint(backend.spec.endpoint);
        conn = ep.is_unix ? svc::connect_unix(ep.path)
                          : svc::connect_tcp(ep.host, ep.port);
      } catch (const std::exception&) {
        break;  // backend not dialable
      }
      if (pooled || attempt > 0)
        backend.reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    if (conn->write_line(line)) {
      std::optional<std::string> response =
          conn->read_line(svc::kMaxResponseBytes);
      if (response) {
        const util::MutexLock lock(backend.pool_mutex);
        backend.idle.push_back(std::move(conn));
        return response;
      }
      // EOF mid-request or an overlong response: the stream is dead or
      // desynchronized either way — drop the connection.
    }
    conn.reset();
    if (!pooled) break;  // the failed connection was already fresh
    pooled = false;      // retry once on a fresh dial
  }
  backend.healthy.store(false, std::memory_order_release);
  backend.failures.fetch_add(1, std::memory_order_relaxed);
  {
    const util::MutexLock lock(stats_mutex_);
    ++counters_.backend_failures;
  }
  return std::nullopt;
}

std::optional<Router::ForwardResult> Router::forward(const std::string& digest,
                                                     const std::string& line) {
  const std::vector<std::size_t> order = shard_map_->preference(digest);
  // Eligible backends in preference order, then the skipped ones as a
  // last resort — a draining or unhealthy backend that still answers
  // beats a structured failure.
  std::vector<std::size_t> try_order;
  try_order.reserve(order.size());
  for (const std::size_t idx : order)
    if (!should_skip(*backends_[idx])) try_order.push_back(idx);
  const std::size_t eligible = try_order.size();
  for (const std::size_t idx : order)
    if (should_skip(*backends_[idx])) try_order.push_back(idx);

  std::optional<ForwardResult> pushed_back;  // best overloaded response
  for (std::size_t i = 0; i < try_order.size(); ++i) {
    const std::size_t idx = try_order[i];
    BackendState& backend = *backends_[idx];
    std::optional<std::string> response = forward_once(backend, line);
    if (!response) continue;

    ForwardResult result;
    result.response = std::move(*response);
    result.backend = idx;
    result.spilled = idx != order.front();
    result.ok = true;
    try {
      // One in-situ parse of the response to read the envelope verdict —
      // the spill decision needs the error code; the bytes are relayed
      // untouched either way.
      const util::JsonArena parsed = util::parse_json_arena(result.response);
      if (parsed.root().is_object() && parsed.root().contains("ok") &&
          parsed.root().at("ok").is_bool()) {
        result.ok = parsed.root().at("ok").as_bool();
        if (!result.ok && parsed.root().contains("error") &&
            parsed.root().at("error").is_object() &&
            parsed.root().at("error").contains("code")) {
          result.error_code =
              std::string(parsed.root().at("error").at("code").as_string());
        }
      }
    } catch (const std::exception&) {
      // A non-JSON response is a backend bug; relay it rather than guess.
    }
    // Reactive spill: a backend that answers "overloaded" (admission
    // control) or "shutting_down" (drain raced the probe) pushes the
    // request to the next preference. The pushed-back response is kept —
    // when every backend is saturated the client gets the owner's
    // rejection, complete with its wall_retry_after_ms backoff hint.
    if (!result.ok && (result.error_code == "overloaded" ||
                       result.error_code == "shutting_down") &&
        i + 1 < eligible) {
      if (!pushed_back) pushed_back = std::move(result);
      continue;
    }
    return result;
  }
  return pushed_back;
}

void Router::process_line(const svc::ConnectionPtr& conn, std::string line,
                          std::uint32_t ordinal) {
  const util::Timer admitted;
  const double admitted_at_ms = telemetry_.now_ms();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter_add("route.requests");

  obs::RequestEvent event;
  event.bytes_in = line.size();

  std::optional<obs::RequestTrace> trace;
  JsonValue id;
  std::string request_id;
  std::string response;
  bool ok = false;
  bool forwarded_request = false;
  bool spilled = false;
  try {
    RouteDoc request;
    {
      const util::Timer parse_timer;
      try {
        request = RouteDoc::parse(line, options_.use_arena_parser);
      } catch (const util::JsonError& e) {
        throw std::runtime_error(std::string("parse_error: ") + e.what());
      }
      event.parse_ms = parse_timer.elapsed_ms();
      metrics.wall_duration_record("wall_route_parse_ms", event.parse_ms);
    }
    if (!request.is_object())
      throw std::invalid_argument("request must be a JSON object");
    if (request.contains("id")) id = request.id();
    const bool client_sent_request_id = request.contains("request_id");
    if (client_sent_request_id)
      request_id = request.string_field("request_id");
    if (request_id.empty()) request_id = next_request_id();
    if (!request.contains("type"))
      throw std::invalid_argument("request needs a \"type\" field");
    const std::string type = request.string_field("type");
    event.type = type;

    // Trace context: same resolution as the backend (adopt a well-formed
    // client traceparent, else derive from the request_id), but the root
    // span is "route.request" — the cross-process tree reads
    // route.request -> route.forward -> svc.request.
    {
      obs::TraceContext tctx;
      if (request.contains("traceparent") &&
          request.field_is_string("traceparent")) {
        if (auto parsed =
                obs::TraceContext::parse(request.string_field("traceparent")))
          tctx = *parsed;
      }
      if (!tctx.valid()) {
        tctx = obs::TraceContext::derive(request_id, false);
        tctx.span_id.clear();
      }
      tctx.sampled = tctx.sampled ||
                     obs::trace_head_sample(tctx.trace_id,
                                            options_.trace_sample_rate);
      trace.emplace(std::move(tctx), admitted, "route.request");
      trace->add_complete("route.parse", 0.0, event.parse_ms);
    }

    if (type == "health") {
      JsonObject body = ok_envelope(id, type, request_id);
      body["protocol_version"] = JsonValue(svc::kSvcProtocolVersion);
      body["role"] = JsonValue("router");
      body["draining"] = JsonValue(draining());
      JsonArray list;
      for (const BackendView& view : backend_views()) {
        JsonObject b;
        b["name"] = JsonValue(view.name);
        b["endpoint"] = JsonValue(view.endpoint);
        b["weight"] = JsonValue(view.weight);
        b["draining"] = JsonValue(view.draining);
        b["healthy"] = JsonValue(view.healthy);
        if (view.probed) {
          b["queue_capacity"] = JsonValue(view.queue_capacity);
          b["workers"] = JsonValue(view.workers);
          b["wall_queue_depth"] = JsonValue(view.queue_depth);
          b["wall_inflight"] = JsonValue(view.inflight);
          b["wall_service_time_ms"] = JsonValue(view.service_time_ms);
        }
        list.push_back(JsonValue(std::move(b)));
      }
      body["backends"] = JsonValue(std::move(list));
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "stats") {
      const RouterStats s = stats();
      JsonObject body = ok_envelope(id, type, request_id);
      body["protocol_version"] = JsonValue(svc::kSvcProtocolVersion);
      JsonObject router;
      router["accepted_connections"] = JsonValue(s.accepted_connections);
      router["requests_total"] = JsonValue(s.requests_total);
      router["responses_ok"] = JsonValue(s.responses_ok);
      router["responses_error"] = JsonValue(s.responses_error);
      router["forwarded"] = JsonValue(s.forwarded);
      router["spilled"] = JsonValue(s.spilled);
      router["backend_reconnects"] = JsonValue(s.backend_reconnects);
      router["backend_failures"] = JsonValue(s.backend_failures);
      body["router"] = JsonValue(std::move(router));
      JsonArray list;
      for (const BackendView& view : backend_views()) {
        JsonObject b;
        b["name"] = JsonValue(view.name);
        b["draining"] = JsonValue(view.draining);
        b["healthy"] = JsonValue(view.healthy);
        b["forwarded"] = JsonValue(view.forwarded);
        b["spilled_to"] = JsonValue(view.spilled_to);
        b["failures"] = JsonValue(view.failures);
        b["reconnects"] = JsonValue(view.reconnects);
        list.push_back(JsonValue(std::move(b)));
      }
      body["backends"] = JsonValue(std::move(list));
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "metrics") {
      JsonObject body = ok_envelope(id, type, request_id);
      body["telemetry"] = metrics_json();
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "drain_backend") {
      if (!request.contains("backend"))
        throw std::invalid_argument(
            "drain_backend needs a \"backend\" (name) field");
      const std::string name = request.string_field("backend");
      if (!drain_backend(name))
        throw std::invalid_argument(
            "cannot drain \"" + name +
            "\": unknown backend or last one accepting keys");
      JsonObject body = ok_envelope(id, type, request_id);
      body["draining_backend"] = JsonValue(name);
      std::size_t active = 0;
      for (const auto& backend : backends_)
        if (!backend->draining.load(std::memory_order_acquire)) ++active;
      body["active_backends"] = JsonValue(active);
      response = JsonValue(std::move(body)).dump();
      ok = true;
    } else if (type == "shutdown") {
      JsonObject body = ok_envelope(id, type, request_id);
      body["draining"] = JsonValue(true);
      response = JsonValue(std::move(body)).dump();
      conn->write_line(response);
      {
        const util::MutexLock lock(stats_mutex_);
        ++counters_.responses_ok;
      }
      event.request_id = request_id;
      event.outcome = "ok";
      event.bytes_out = response.size() + 1;
      event.total_ms = admitted.elapsed_ms();
      flight_.record(event, nullptr);
      record_event(std::move(event));
      // Response is on the wire before the drain (the drain tears the
      // trace writer down, so this last request skips the trace epilogue).
      request_shutdown();
      return;
    } else {
      // Routed. Requests with an instance shard by its digest; everything
      // else lands on the empty-digest owner — placement stays a pure
      // function of the request bytes either way.
      std::string digest;
      if (request.contains("instance") && request.instance_is_object()) {
        trace->begin("route.digest");
        digest = obs::fnv1a64_hex(request.instance_canonical());
        trace->end();
        event.instance_digest = digest;
      }
      if (request.contains("algorithm") && request.field_is_string("algorithm"))
        event.algorithm = request.string_field("algorithm");

      // The forwarded line: the raw client bytes plus (a) the resolved
      // request_id when the client sent none — so the backend's wide
      // event, the response, and the router's log all correlate on one id
      // and the backend never mints its own — and (b) the traceparent
      // naming the route.forward span as parent, which overrides any
      // client traceparent by the last-duplicate-wins rule.
      if (!client_sent_request_id)
        splice_field(line, "request_id", JsonValue(request_id).dump());
      trace->begin("route.forward");
      const obs::TraceContext& ctx = trace->context();
      const std::string hop_traceparent =
          "00-" + ctx.trace_id + "-" + trace->current_span_id() + "-" +
          (ctx.sampled ? "01" : "00");
      splice_field(line, "traceparent", JsonValue(hop_traceparent).dump());

      std::optional<ForwardResult> result = forward(digest, line);
      trace->end();
      if (!result)
        throw NoBackendError("no backend reachable for this request");

      forwarded_request = true;
      spilled = result->spilled;
      backends_[result->backend]->forwarded.fetch_add(
          1, std::memory_order_relaxed);
      if (result->spilled) {
        backends_[result->backend]->spilled_to.fetch_add(
            1, std::memory_order_relaxed);
        metrics.counter_add("route.spilled");
      }
      metrics.counter_add("route.forwarded");

      response = std::move(result->response);
      splice_field(response, "route_backend",
                   JsonValue(backends_[result->backend]->spec.name).dump());
      if (result->spilled)
        splice_field(response, "route_spilled", "true");
      ok = result->ok;
      if (!ok)
        event.outcome = result->error_code.empty() ? "relayed_error"
                                                   : result->error_code;
    }
  } catch (const std::exception& e) {
    const std::string what = e.what();
    std::string code = "bad_request";
    std::string message = what;
    if (dynamic_cast<const NoBackendError*>(&e) != nullptr) {
      code = "unavailable";
    } else if (what.rfind("parse_error: ", 0) == 0) {
      code = "parse_error";
      message = what.substr(13);
    } else if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr ||
               dynamic_cast<const util::JsonError*>(&e) != nullptr) {
      code = "bad_request";
    } else {
      code = "internal";
    }
    if (request_id.empty()) request_id = next_request_id();
    event.outcome = code;
    response = error_line(id, code, message, request_id);
  }

  {
    const util::MutexLock lock(stats_mutex_);
    if (ok) {
      ++counters_.responses_ok;
    } else {
      ++counters_.responses_error;
    }
    if (forwarded_request) {
      ++counters_.forwarded;
      if (spilled) ++counters_.spilled;
    }
  }
  conn->write_line(response);
  metrics.wall_duration_record("wall_route_service_ms", admitted.elapsed_ms());

  event.request_id = request_id;
  event.ok = ok;
  event.bytes_out = response.size() + 1;
  event.total_ms = admitted.elapsed_ms();

  if (!trace) {
    obs::TraceContext minted = obs::TraceContext::derive(request_id, false);
    minted.span_id.clear();
    minted.sampled =
        obs::trace_head_sample(minted.trace_id, options_.trace_sample_rate);
    trace.emplace(std::move(minted), admitted, "route.request");
  }
  const bool sampled = trace->context().sampled;
  std::string keep_reason;  // priority: error > sampled > slow
  if (!ok) {
    keep_reason = "error";
  } else if (sampled) {
    keep_reason = "sampled";
  } else if (options_.slow_request_ms >= 0.0 &&
             event.total_ms >= options_.slow_request_ms) {
    keep_reason = "slow";
  }
  if (sampled) traces_sampled_.fetch_add(1, std::memory_order_relaxed);
  obs::FinishedTrace finished =
      trace->finish(request_id, event.type, keep_reason, ordinal,
                    admitted_at_ms);
  if (!keep_reason.empty())
    traces_kept_.fetch_add(1, std::memory_order_relaxed);
  flight_.record(event, &finished);
  if (trace_writer_ && !keep_reason.empty())
    trace_writer_->write(std::move(finished));

  record_event(std::move(event));
}

void Router::prober_loop() {
  while (true) {
    {
      util::MutexLock lock(prober_mutex_);
      // One bounded wait per sweep; wakes early on drain. The while-loop
      // re-arms against spurious wakeups without stretching the period.
      while (!prober_stop_ &&
             prober_cv_.wait_for_ms(prober_mutex_,
                                    options_.health_interval_ms)) {
      }
      if (prober_stop_) return;
    }
    probe_all();
  }
}

void Router::probe_all() {
  for (const auto& backend_ptr : backends_) {
    BackendState& backend = *backend_ptr;
    if (backend.draining.load(std::memory_order_acquire)) continue;
    bool probe_ok = false;
    bool peer_draining = false;
    std::size_t queue_capacity = 0;
    std::size_t workers = 0;
    double queue_depth = 0.0;
    double inflight = 0.0;
    double service_time_ms = 0.0;
    try {
      // A fresh connection per probe: probes are rare (one per period)
      // and a dedicated dial doubles as a reachability check that pooled
      // connections would mask.
      svc::SvcClient::ReconnectOptions no_retry;
      no_retry.attempts = 0;
      svc::SvcClient probe =
          svc::SvcClient::connect(backend.spec.endpoint, no_retry);
      const svc::SvcResponse reply = probe.health();
      if (!reply.ok)
        throw std::runtime_error("health answered " + reply.error_code);
      const JsonValue& body = reply.body;
      if (body.contains("draining") && body.at("draining").is_bool())
        peer_draining = body.at("draining").as_bool();
      if (body.contains("queue_capacity") &&
          body.at("queue_capacity").is_number())
        queue_capacity = static_cast<std::size_t>(
            body.at("queue_capacity").as_number());
      if (body.contains("workers") && body.at("workers").is_number())
        workers = static_cast<std::size_t>(body.at("workers").as_number());
      if (body.contains("wall_queue_depth") &&
          body.at("wall_queue_depth").is_number())
        queue_depth = body.at("wall_queue_depth").as_number();
      if (body.contains("wall_inflight") &&
          body.at("wall_inflight").is_number())
        inflight = body.at("wall_inflight").as_number();
      if (body.contains("wall_service_time_ms") &&
          body.at("wall_service_time_ms").is_number())
        service_time_ms = body.at("wall_service_time_ms").as_number();
      probe_ok = true;
    } catch (const std::exception&) {
      probe_ok = false;
    }
    if (probe_ok) {
      {
        const util::MutexLock lock(backend.health_mutex);
        backend.probed = true;
        backend.probe_failures = 0;
        backend.queue_capacity = queue_capacity;
        backend.workers = workers;
        backend.queue_depth = queue_depth;
        backend.inflight = inflight;
        backend.service_time_ms = service_time_ms;
      }
      // A peer that reports draining still answers, but should stop
      // receiving new keys; unhealthy is the skip flag that probing can
      // undo once the peer restarts.
      backend.healthy.store(!peer_draining, std::memory_order_release);
    } else {
      bool now_unhealthy = false;
      {
        const util::MutexLock lock(backend.health_mutex);
        ++backend.probe_failures;
        backend.probed = false;
        now_unhealthy =
            backend.probe_failures >= options_.probe_failure_threshold;
      }
      if (now_unhealthy)
        backend.healthy.store(false, std::memory_order_release);
    }
  }
}

bool Router::drain_backend(const std::string& name) {
  std::size_t target = backends_.size();
  std::size_t active = 0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->spec.name == name) target = i;
    if (!backends_[i]->draining.load(std::memory_order_acquire)) ++active;
  }
  if (target == backends_.size()) return false;
  if (backends_[target]->draining.load(std::memory_order_acquire))
    return true;  // idempotent
  if (active <= 1) return false;  // would leave no backend accepting keys
  backends_[target]->draining.store(true, std::memory_order_release);
  return true;
}

void Router::request_shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel))
    return;
  if (listener_) listener_->shutdown();
  {
    const util::MutexLock lock(lifecycle_mutex_);
    for (const std::weak_ptr<svc::Connection>& weak : conns_)
      if (svc::ConnectionPtr conn = weak.lock()) conn->shutdown_read();
    drain_ready_ = true;
  }
  {
    const util::MutexLock lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  drain_cv_.notify_all();
}

void Router::wait() {
  {
    const util::MutexLock lock(lifecycle_mutex_);
    while (!drain_ready_) drain_cv_.wait(lifecycle_mutex_);
  }
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  if (prober_thread_.joinable()) prober_thread_.join();
  {
    const util::MutexLock lock(lifecycle_mutex_);
    for (std::thread& t : session_threads_)
      if (t.joinable()) t.join();
    session_threads_.clear();
    conns_.clear();
  }
  // Sessions are gone, so the pools are quiescent; dropping the idle
  // connections closes them.
  for (const auto& backend : backends_) {
    const util::MutexLock lock(backend->pool_mutex);
    backend->idle.clear();
  }
  if (admin_) admin_->stop();
  if (request_log_) request_log_->close();
  if (trace_writer_) trace_writer_->close();
}

RouterStats Router::stats() const {
  const util::MutexLock lock(stats_mutex_);
  return counters_;
}

std::vector<BackendView> Router::backend_views() const {
  std::vector<BackendView> views;
  views.reserve(backends_.size());
  for (const auto& backend_ptr : backends_) {
    const BackendState& backend = *backend_ptr;
    BackendView view;
    view.name = backend.spec.name;
    view.endpoint = backend.spec.endpoint;
    view.weight = backend.spec.weight;
    view.draining = backend.draining.load(std::memory_order_acquire);
    view.healthy = backend.healthy.load(std::memory_order_acquire);
    {
      const util::MutexLock lock(backend.health_mutex);
      view.probed = backend.probed;
      view.queue_capacity = backend.queue_capacity;
      view.workers = backend.workers;
      view.queue_depth = backend.queue_depth;
      view.inflight = backend.inflight;
      view.service_time_ms = backend.service_time_ms;
    }
    view.forwarded = backend.forwarded.load(std::memory_order_relaxed);
    view.spilled_to = backend.spilled_to.load(std::memory_order_relaxed);
    view.failures = backend.failures.load(std::memory_order_relaxed);
    view.reconnects = backend.reconnects.load(std::memory_order_relaxed);
    views.push_back(std::move(view));
  }
  return views;
}

void Router::record_event(obs::RequestEvent event) {
  telemetry_.record(event);
  if (request_log_) request_log_->write(event);
}

obs::ServiceGauges Router::gauges() const {
  obs::ServiceGauges g;
  g.connections_in_flight =
      connections_in_flight_.load(std::memory_order_relaxed);
  {
    const util::MutexLock lock(stats_mutex_);
    g.accepted_connections = counters_.accepted_connections;
  }
  if (request_log_) {
    g.request_log_dropped = request_log_->dropped();
    g.request_log_rotations = request_log_->rotations();
  }
  g.traces_sampled = traces_sampled_.load(std::memory_order_relaxed);
  g.traces_kept = traces_kept_.load(std::memory_order_relaxed);
  if (trace_writer_) g.trace_writer_dropped = trace_writer_->dropped();
  g.flight_capacity = flight_.capacity();
  g.flight_size = flight_.size();
  g.flight_recorded_total = flight_.recorded_total();
  return g;
}

util::JsonValue Router::flight_json() const { return flight_.to_json(); }

util::JsonValue Router::metrics_json() {
  JsonValue doc = obs::telemetry_to_json(telemetry_.snapshot(), gauges());
  const RouterStats s = stats();
  JsonObject route;
  route["forwarded"] = JsonValue(s.forwarded);
  route["spilled"] = JsonValue(s.spilled);
  route["backend_reconnects"] = JsonValue(s.backend_reconnects);
  route["backend_failures"] = JsonValue(s.backend_failures);
  JsonArray list;
  for (const BackendView& view : backend_views()) {
    JsonObject b;
    b["name"] = JsonValue(view.name);
    b["endpoint"] = JsonValue(view.endpoint);
    b["weight"] = JsonValue(view.weight);
    b["draining"] = JsonValue(view.draining);
    b["healthy"] = JsonValue(view.healthy);
    b["forwarded"] = JsonValue(view.forwarded);
    b["spilled_to"] = JsonValue(view.spilled_to);
    b["failures"] = JsonValue(view.failures);
    b["reconnects"] = JsonValue(view.reconnects);
    if (view.probed) {
      b["queue_capacity"] = JsonValue(view.queue_capacity);
      b["workers"] = JsonValue(view.workers);
      b["wall_queue_depth"] = JsonValue(view.queue_depth);
      b["wall_inflight"] = JsonValue(view.inflight);
      b["wall_service_time_ms"] = JsonValue(view.service_time_ms);
    }
    list.push_back(JsonValue(std::move(b)));
  }
  route["backends"] = JsonValue(std::move(list));
  doc.as_object()["route"] = JsonValue(std::move(route));
  return doc;
}

std::string Router::metrics_prometheus() {
  std::string text =
      obs::telemetry_to_prometheus(telemetry_.snapshot(), gauges());
  // Router-specific series appended in the same exposition format.
  const RouterStats s = stats();
  text += "# TYPE mecsc_route_forwarded_total counter\n";
  text += "mecsc_route_forwarded_total " + std::to_string(s.forwarded) + "\n";
  text += "# TYPE mecsc_route_spilled_total counter\n";
  text += "mecsc_route_spilled_total " + std::to_string(s.spilled) + "\n";
  for (const BackendView& view : backend_views()) {
    text += "mecsc_route_backend_forwarded_total{backend=\"" + view.name +
            "\"} " + std::to_string(view.forwarded) + "\n";
    text += "mecsc_route_backend_healthy{backend=\"" + view.name + "\"} " +
            std::string(view.healthy ? "1" : "0") + "\n";
  }
  return text;
}

}  // namespace mecsc::route
