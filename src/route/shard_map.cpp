#include "route/shard_map.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/run_info.h"

namespace mecsc::route {

namespace {

/// 64-bit avalanche finalizer (the murmur3/splitmix constant pair) over
/// the FNV-1a hash. FNV-1a alone mixes its *high* bits poorly on short
/// inputs — vnode labels like "b5#17" land clustered in the upper range,
/// which skews ring arcs badly enough that a new backend can capture far
/// more than its 1/N share. The finalizer spreads every input bit over
/// the full word; still a pure function, so placement stays deterministic.
std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::uint64_t ring_point(const std::string& label) {
  return mix64(obs::fnv1a64(label));
}

}  // namespace

ShardMap::ShardMap(std::vector<BackendSpec> backends)
    : backends_(std::move(backends)) {
  if (backends_.empty())
    throw std::invalid_argument("route: shard map needs at least one backend");
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const BackendSpec& b = backends_[i];
    if (b.name.empty())
      throw std::invalid_argument("route: backend name must not be empty");
    if (b.weight == 0)
      throw std::invalid_argument("route: backend \"" + b.name +
                                  "\" has zero weight");
    for (std::size_t j = 0; j < i; ++j) {
      if (backends_[j].name == b.name)
        throw std::invalid_argument("route: duplicate backend name \"" +
                                    b.name + "\"");
    }
  }

  std::size_t total_vnodes = 0;
  for (const BackendSpec& b : backends_) {
    total_vnodes += b.weight * kVnodesPerWeight;
  }
  ring_.reserve(total_vnodes);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const BackendSpec& b = backends_[i];
    const std::size_t vnodes = b.weight * kVnodesPerWeight;
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.push_back(Vnode{ring_point(b.name + "#" + std::to_string(v)), i});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.backend < b.backend;
  });
}

std::size_t ShardMap::lower_bound_ring(std::uint64_t hash) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const Vnode& v, std::uint64_t h) { return v.hash < h; });
  // Past the last vnode wraps to the ring's start.
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::size_t ShardMap::owner(const std::string& digest) const {
  return ring_[lower_bound_ring(ring_point(digest))].backend;
}

std::vector<std::size_t> ShardMap::preference(const std::string& digest) const {
  std::vector<std::size_t> order;
  order.reserve(backends_.size());
  std::vector<bool> seen(backends_.size(), false);
  const std::size_t start = lower_bound_ring(ring_point(digest));
  for (std::size_t step = 0;
       step < ring_.size() && order.size() < backends_.size(); ++step) {
    const std::size_t backend = ring_[(start + step) % ring_.size()].backend;
    if (seen[backend]) continue;
    seen[backend] = true;
    order.push_back(backend);
  }
  return order;
}

}  // namespace mecsc::route
