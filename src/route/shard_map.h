// Weighted consistent-hash shard map: which backend owns an instance
// digest, and in what order the remaining backends stand in when the
// owner is down, draining, or overloaded.
//
// The map is a classic hash ring over virtual nodes. Each backend
// contributes weight * kVnodesPerWeight points at
// mix64(fnv1a64(name + "#" + v)); a digest lands at mix64(fnv1a64(digest))
// and walks the ring clockwise (the avalanche finalizer matters: raw
// FNV-1a clusters short labels' high bits, see shard_map.cpp). The first
// distinct backend met is the owner; the order the others appear in is
// the spill preference. Everything is hashed from names — no RNG, no
// pointer values, no std::hash —
// so the same topology yields byte-identical assignments in every
// process, every run, every platform. That determinism is what makes the
// router's affinity guarantee (repeat digests → same backend → warm
// result cache) hold across router restarts.
//
// Ring properties the tests pin down (tests/test_shard_map.cpp):
//   - removing a backend only reassigns the keys it owned (expected
//     share ≈ weight / total_weight); every other key keeps its owner;
//   - adding a backend steals only the keys it now owns;
//   - ownership is proportional to weight;
//   - an empty topology is a constructor error, not a runtime surprise.
//
// ShardMap is immutable: topology changes (drain, re-add) build a new
// map and swap it in under the router's topology mutex, so readers never
// see a half-updated ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mecsc::route {

/// One backend as the router sees it: a stable name (the hash identity —
/// renaming a backend moves its keys), the endpoint to dial, and a
/// relative capacity weight.
struct BackendSpec {
  std::string name;
  std::string endpoint;  ///< "unix:<path>" / "tcp:<host>:<port>" / bare path
  std::size_t weight = 1;
};

/// Virtual nodes per unit of weight. High enough that ownership shares
/// concentrate near weight / total_weight (relative spread shrinks like
/// 1/sqrt(vnodes)), low enough that building a map is trivial.
inline constexpr std::size_t kVnodesPerWeight = 64;

class ShardMap {
 public:
  /// Builds the ring. Throws std::invalid_argument on an empty topology,
  /// a duplicate or empty backend name, or a zero weight.
  explicit ShardMap(std::vector<BackendSpec> backends);

  /// Index (into backends()) of the digest's owner.
  std::size_t owner(const std::string& digest) const;

  /// All backends in clockwise ring order from the digest's position:
  /// preference(d)[0] is the owner, [1] the first spill target, and so
  /// on — every backend appears exactly once.
  std::vector<std::size_t> preference(const std::string& digest) const;

  const std::vector<BackendSpec>& backends() const { return backends_; }
  std::size_t size() const { return backends_.size(); }

 private:
  /// One ring point: vnode hash plus the backend it belongs to. Sorted by
  /// (hash, backend) — the tiebreak keeps the ring total-ordered even on
  /// the astronomically unlikely hash collision.
  struct Vnode {
    std::uint64_t hash;
    std::size_t backend;
  };

  /// Ring position of the first vnode at or clockwise of `hash`.
  std::size_t lower_bound_ring(std::uint64_t hash) const;

  std::vector<BackendSpec> backends_;
  std::vector<Vnode> ring_;
};

}  // namespace mecsc::route
