// Dynamic market walkthrough: watch a service market evolve over epochs —
// providers arrive and depart, the mechanism re-plans, cached instances
// migrate, and the bill splits into operating cost vs churn cost.
//
//   ./dynamic_market [epochs] [seed] [policy: full|incremental]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/market_dynamics.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::size_t epochs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  const bool incremental = argc > 3 && std::strcmp(argv[3], "incremental") == 0;

  util::Rng pool_rng(seed);
  core::InstanceParams params;
  params.network_size = 120;
  params.provider_count = 100;
  const core::Instance pool = core::generate_instance(params, pool_rng);

  core::MarketDynamicsParams market;
  market.epochs = epochs;
  market.policy = incremental ? core::ReplanPolicy::IncrementalRepair
                              : core::ReplanPolicy::FullRecompute;

  std::cout << "Dynamic service market: pool of " << pool.provider_count()
            << " providers, " << pool.cloudlet_count() << " cloudlets, "
            << epochs << " epochs, policy = "
            << core::replan_policy_name(market.policy) << "\n";

  util::Rng rng(seed + 1);
  const core::MarketDynamicsResult r =
      core::simulate_market(pool, market, rng);

  util::Table timeline({"epoch", "active", "arrivals", "departures",
                        "migrations", "social cost", "migration cost",
                        "replan ms"});
  for (const auto& e : r.epochs) {
    timeline.add_row({static_cast<long long>(e.epoch),
                      static_cast<long long>(e.active_providers),
                      static_cast<long long>(e.arrivals),
                      static_cast<long long>(e.departures),
                      static_cast<long long>(e.migrations), e.social_cost,
                      e.migration_cost, e.replan_ms});
  }
  util::print_section(std::cout, "Market timeline", timeline);

  std::cout << "\nTotals: operating cost = " << r.total_social_cost
            << ", churn (migration) cost = " << r.total_migration_cost
            << ", combined = " << r.total_cost() << "\n"
            << "Try the other policy: ./dynamic_market " << epochs << " "
            << seed << (incremental ? " full" : " incremental") << "\n";
  return 0;
}
