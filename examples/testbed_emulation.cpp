// Test-bed emulation walkthrough: builds the AS1755 overlay scenario of
// §IV-C, places services with each algorithm, replays a request workload
// through the discrete-event emulator, and reports measured social cost,
// request latency, and per-cloudlet congestion.
//
//   ./testbed_emulation [providers] [seed]
#include <cstdlib>
#include <iostream>

#include "sim/testbed.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::size_t providers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  util::Rng rng(seed);
  sim::TestbedConfig config;
  config.provider_count = providers;
  config.one_minus_xi = 0.3;
  config.workload.horizon_s = 30.0;

  std::cout << "Emulated test-bed: AS1755 overlay (87 switches), "
            << providers << " providers, 1-xi = 0.3, "
            << config.workload.horizon_s << "s workload\n";

  const sim::TestbedRun run = sim::run_testbed(config, rng);

  util::Table table({"algorithm", "measured cost", "analytic cost",
                     "latency p50 (ms)", "latency p95 (ms)", "cached",
                     "alg time (ms)"});
  for (const auto& r : run.results) {
    table.add_row({sim::algorithm_name(r.algorithm), r.measured_social_cost,
                   r.analytic_social_cost, r.request_latency_s.p50 * 1e3,
                   r.request_latency_s.p95 * 1e3,
                   static_cast<long long>(r.cached_services),
                   r.algorithm_ms});
  }
  util::print_section(std::cout, "Test-bed results", table);

  // Drill into one placement: replay LCF again and show the cloudlet
  // concurrency the emulator measured.
  core::InstanceParams params = config.instance;
  params.use_as1755 = true;
  params.provider_count = providers;
  util::Rng rng2(seed);
  const core::Instance inst = core::generate_instance(params, rng2);
  const auto trace = sim::generate_workload(inst, config.workload, rng2);
  const core::Assignment placement =
      sim::run_algorithm(inst, sim::Algorithm::Lcf, 0.3, nullptr);
  const sim::EmulationResult emu = sim::replay(placement, trace);

  util::Table congestion({"cloudlet", "deployed instances",
                          "avg concurrent requests"});
  for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    congestion.add_row({static_cast<long long>(i),
                        static_cast<long long>(placement.occupancy(i)),
                        emu.avg_concurrency[i]});
  }
  util::print_section(std::cout, "LCF placement: measured congestion",
                      congestion);
  std::cout << "Total transfer volume (GB x hops): " << emu.total_transfer_gb
            << ", requests served: " << emu.requests_served << "\n";
  return 0;
}
