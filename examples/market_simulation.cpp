// Market simulation: a 5G service market on a GT-ITM-style network, showing
// how the infrastructure provider's coordination level (ξ) shapes the
// market outcome — who caches, who stays remote, and what everyone pays.
//
//   ./market_simulation [network_size] [providers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/baselines.h"
#include "core/lcf.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::size_t size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::size_t providers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  util::Rng rng(seed);
  core::InstanceParams params;
  params.network_size = size;
  params.provider_count = providers;
  const core::Instance inst = core::generate_instance(params, rng);

  std::cout << "Service market: " << inst.network.topology().node_count()
            << "-switch MEC network, " << inst.cloudlet_count()
            << " cloudlets, " << providers << " service providers\n";

  // Sweep the coordination level and watch the market respond.
  util::Table sweep({"1-xi", "social cost", "coordinated cost",
                     "selfish cost", "cached services", "BR rounds"});
  for (const double one_minus_xi :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    core::LcfOptions options;
    options.coordinated_fraction = 1.0 - one_minus_xi;
    const core::LcfResult r = core::run_lcf(inst, options);
    long long cached = 0;
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      if (r.assignment.choice(l) != core::kRemote) ++cached;
    }
    sweep.add_row({one_minus_xi, r.social_cost(), r.coordinated_cost,
                   r.selfish_cost, cached,
                   static_cast<long long>(r.game_rounds)});
  }
  util::print_section(std::cout, "Coordination sweep (LCF mechanism)", sweep);

  // Cloudlet congestion picture at the paper's default 1-xi = 0.3.
  core::LcfOptions options;
  options.coordinated_fraction = 0.7;
  const core::LcfResult r = core::run_lcf(inst, options);
  util::Table load({"cloudlet", "tenants", "compute used %",
                    "bandwidth used %", "alpha+beta"});
  for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    const auto& cl = inst.network.cloudlets()[i];
    load.add_row(
        {static_cast<long long>(i),
         static_cast<long long>(r.assignment.occupancy(i)),
         100.0 * (1.0 - r.assignment.compute_left(i) / cl.compute_capacity),
         100.0 *
             (1.0 - r.assignment.bandwidth_left(i) / cl.bandwidth_capacity),
         inst.cost.alpha[i] + inst.cost.beta[i]});
  }
  util::print_section(std::cout, "Cloudlet load at 1-xi = 0.3", load);

  // Compare against the uncoordinated baselines.
  const core::Assignment jo = core::run_jo_offload_cache(inst);
  const core::Assignment oc = core::run_offload_cache(inst);
  util::Table cmp({"mechanism", "social cost", "vs LCF %"});
  cmp.add_row({std::string("LCF"), r.social_cost(), 0.0});
  cmp.add_row({std::string("JoOffloadCache"), jo.social_cost(),
               100.0 * (jo.social_cost() / r.social_cost() - 1.0)});
  cmp.add_row({std::string("OffloadCache"), oc.social_cost(),
               100.0 * (oc.social_cost() / r.social_cost() - 1.0)});
  util::print_section(std::cout, "Mechanism comparison", cmp);
  return 0;
}
