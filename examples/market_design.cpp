// Market-design walkthrough: two ways for the infrastructure provider to
// stabilize the service market —
//   (a) contracts (the paper's LCF): pin the costliest providers to the
//       coordinated placement, and measure how binding those contracts are
//       (deviation incentives, side-payment budget);
//   (b) posted prices (extension): publish a price per cloudlet and let
//       everyone act selfishly; tâtonnement tunes the prices until the
//       equilibrium matches the coordinated congestion profile.
//
//   ./market_design [network_size] [providers] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/congestion_game.h"
#include "core/delay_model.h"
#include "core/incentives.h"
#include "core/lcf.h"
#include "core/pricing.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::size_t size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const std::size_t providers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 21;

  util::Rng rng(seed);
  core::InstanceParams params;
  params.network_size = size;
  params.provider_count = providers;
  const core::Instance inst = core::generate_instance(params, rng);
  std::cout << "Market: " << inst.cloudlet_count() << " cloudlets, "
            << providers << " providers\n";

  // --- (a) Contracts ---------------------------------------------------------
  core::LcfOptions lcf_options;
  lcf_options.coordinated_fraction = 0.7;
  const core::LcfResult lcf = core::run_lcf(inst, lcf_options);
  const core::StabilityReport stability = core::analyze_stability(inst, lcf);

  util::Table contracts({"metric", "value"});
  contracts.add_row({std::string("social cost"), lcf.social_cost()});
  contracts.add_row({std::string("coordinated providers"),
                     static_cast<long long>(std::count(
                         lcf.coordinated.begin(), lcf.coordinated.end(),
                         true))});
  contracts.add_row({std::string("contracts doing real work (binding)"),
                     static_cast<long long>(stability.binding_contracts)});
  contracts.add_row({std::string("side-payment budget for voluntary obedience"),
                     stability.side_payment_budget});
  contracts.add_row(
      {std::string("budget as % of social cost"),
       100.0 * stability.side_payment_budget / lcf.social_cost()});
  util::print_section(std::cout, "(a) Stabilize by contract — LCF",
                      contracts);

  // --- (b) Posted prices -------------------------------------------------------
  const core::PricingResult priced = core::decentralize_by_pricing(inst);
  util::Table prices({"metric", "value"});
  prices.add_row({std::string("social cost"), priced.social_cost});
  prices.add_row({std::string("tatonnement iterations"),
                  static_cast<long long>(priced.iterations)});
  prices.add_row({std::string("occupancy gap vs coordinated target"),
                  static_cast<long long>(priced.occupancy_gap)});
  prices.add_row({std::string("leader's price revenue"), priced.revenue});
  util::print_section(std::cout, "(b) Stabilize by posted prices", prices);

  util::Table per_cloudlet({"cloudlet", "target occupancy",
                            "priced-NE occupancy", "posted price"});
  for (core::CloudletId i = 0; i < inst.cloudlet_count(); ++i) {
    per_cloudlet.add_row(
        {static_cast<long long>(i),
         static_cast<long long>(priced.target_occupancy[i]),
         static_cast<long long>(priced.assignment.occupancy(i)),
         priced.prices[i]});
  }
  util::print_section(std::cout, "Posted price sheet", per_cloudlet);

  // --- The uncoordinated alternatives ----------------------------------------
  const core::GameResult free_ne = core::best_response_dynamics(
      core::Assignment(inst), std::vector<bool>(providers, true));
  util::Table verdict({"design", "social cost", "request delay (ms)"});
  auto delay_of = [](const core::Assignment& a) {
    return core::evaluate_delay(a).mean_delay_s * 1e3;
  };
  verdict.add_row({std::string("contracts (LCF)"), lcf.social_cost(),
                   delay_of(lcf.assignment)});
  verdict.add_row({std::string("posted prices"), priced.social_cost,
                   delay_of(priced.assignment)});
  verdict.add_row({std::string("laissez-faire (free NE)"),
                   free_ne.assignment.social_cost(),
                   delay_of(free_ne.assignment)});
  util::print_section(std::cout, "Design comparison", verdict);
  return 0;
}
