// Price-of-Anarchy study: how bad can selfish caching get, and how much
// does the approximation-restricted Stackelberg coordination help?
// Uses instances small enough for the exact social optimum.
//
//   ./poa_study [providers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/poa.h"
#include "core/social_optimum.h"
#include "core/virtual_cloudlet.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::size_t providers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  util::Rng rng(seed);
  core::InstanceParams params;
  params.network_size = 50;
  params.provider_count = providers;
  const core::Instance inst = core::generate_instance(params, rng);

  const core::SocialOptimumResult opt = core::solve_social_optimum(inst);
  std::cout << "Instance: " << providers << " providers, "
            << inst.cloudlet_count() << " cloudlets. Exact OPT = " << opt.cost
            << (opt.proven_optimal ? " (proven, " : " (incumbent, ")
            << opt.nodes_explored << " B&B nodes)\n";

  const auto split = core::split_cloudlets(inst);
  std::cout << "delta = " << split.delta_max(inst)
            << ", kappa = " << split.kappa_max(inst) << "\n";

  util::Table table({"xi", "worst NE", "best NE", "empirical PoA",
                     "Theorem 1 bound", "equilibria"});
  for (const double xi : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    core::PoaOptions options;
    options.coordinated_fraction = xi;
    options.restarts = 40;
    util::Rng poa_rng(seed * 1000 + static_cast<std::uint64_t>(xi * 10));
    const core::PoaResult r = core::estimate_poa(inst, options, poa_rng);
    table.add_row({xi, r.worst_equilibrium_cost, r.best_equilibrium_cost,
                   r.empirical_poa, r.theoretical_bound,
                   static_cast<long long>(r.equilibria_found)});
  }
  util::print_section(std::cout,
                      "Price of Anarchy vs coordination level (Theorem 1)",
                      table);
  std::cout
      << "Reading: the Theorem 1 bound 2*delta*kappa/(1-v)*(1/(4v)+1-xi)\n"
         "always dominates the empirical PoA; both shrink as the leader\n"
         "coordinates more of the market (xi grows).\n";
  return 0;
}
