// Quickstart: build a small MEC service market, run every algorithm, and
// print where each provider's service ends up and what it costs.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/appro.h"
#include "core/baselines.h"
#include "core/lcf.h"
#include "core/social_optimum.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecsc;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  util::Rng rng(seed);

  // A small two-tiered MEC network: ~50 switches, 5 cloudlets, 5 DCs,
  // 20 service providers competing for the edge.
  core::InstanceParams params;
  params.network_size = 50;
  params.provider_count = 20;
  const core::Instance inst = core::generate_instance(params, rng);

  std::cout << "MEC network: " << inst.network.topology().node_count()
            << " switches, " << inst.cloudlet_count() << " cloudlets, "
            << inst.network.data_center_count() << " data centers, "
            << inst.provider_count() << " service providers\n";

  // --- The paper's mechanism -----------------------------------------------
  core::LcfOptions lcf_options;
  lcf_options.coordinated_fraction = 0.7;  // 1 - xi = 0.3
  const core::LcfResult lcf = core::run_lcf(inst, lcf_options);
  const core::Assignment jo = core::run_jo_offload_cache(inst);
  const core::Assignment oc = core::run_offload_cache(inst);
  const core::ApproResult appro = core::run_appro(inst);

  util::Table table({"algorithm", "social cost", "cached", "remote"});
  auto add = [&](const std::string& name, const core::Assignment& a) {
    long long cached = 0;
    for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
      if (a.choice(l) != core::kRemote) ++cached;
    }
    table.add_row({name, a.social_cost(), cached,
                   static_cast<long long>(inst.provider_count()) - cached});
  };
  add("Appro (all coordinated)", appro.assignment);
  add("LCF (Stackelberg, 1-xi=0.3)", lcf.assignment);
  add("JoOffloadCache", jo);
  add("OffloadCache", oc);
  util::print_section(std::cout, "Social cost by algorithm", table);

  std::cout << "\nLCF details: coordinated cost = " << lcf.coordinated_cost
            << ", selfish cost = " << lcf.selfish_cost
            << ", best-response rounds = " << lcf.game_rounds
            << ", converged to Nash equilibrium = "
            << (lcf.converged ? "yes" : "no") << "\n";

  // --- Per-provider view of the LCF outcome --------------------------------
  util::Table detail(
      {"provider", "role", "placement", "cost", "remote would cost"});
  for (core::ProviderId l = 0; l < inst.provider_count(); ++l) {
    const std::size_t c = lcf.assignment.choice(l);
    detail.add_row({static_cast<long long>(l),
                    std::string(lcf.coordinated[l] ? "coordinated" : "selfish"),
                    c == core::kRemote ? std::string("remote DC")
                                       : "cloudlet " + std::to_string(c),
                    lcf.assignment.provider_cost(l),
                    core::remote_cost(inst, l)});
  }
  util::print_section(std::cout, "LCF placement (to cache or not to cache)",
                      detail);
  return 0;
}
